//! Bench regression gate: diff a set of freshly produced `BENCH_*.json`
//! reports against checked-in baselines and fail on perf regressions.
//!
//! The comparison is *noise-aware*: a timing metric only counts as a
//! regression when it worsens by more than
//! `max(rel_floor, 3·σ_rel)`, where `σ_rel` is the relative standard
//! deviation read from a `<metric>_std` companion cell when the baseline
//! row carries one. Only whitelisted timing metrics ([`METRICS`]) are
//! compared; every other cell identifies the row (its *key*), except
//! derived ratios ([`EXCLUDED`]) which are ignored entirely. Rows present
//! in the baseline but missing from the current report are coverage
//! regressions and fail the gate too.
//!
//! The build is offline, so the reader is a tiny hand-rolled
//! recursive-descent JSON parser ([`parse_json`]) — just enough for the
//! `pp-bench/v1` reports this crate itself emits.
//!
//! Driven by the `ppbench-compare` binary (workspace `src/bin/`), which CI
//! runs against the six checked-in baselines on every bench-smoke job and
//! whose `--self-test` mode injects a synthetic 50 % slowdown to prove the
//! gate actually trips.

use std::fmt::Write as _;
use std::path::Path;

use pp_core::Welford;

/// Timing metrics compared against the baseline (larger = worse). All
/// other row cells form the row's identity key.
pub const METRICS: &[&str] = &["ns_per_step", "us_per_run", "wall_s"];

/// Cells ignored entirely: derived ratios of timing metrics, which are as
/// noisy as their inputs and would otherwise pollute row keys, plus
/// accuracy readouts (e24's ODE-vs-engine total variation and predicted
/// stabilization time) that the producing bench already hard-asserts —
/// their low decimals shift whenever an engine change perturbs the seeded
/// RNG stream, which is not a perf regression.
pub const EXCLUDED: &[&str] =
    &["speedup", "speedup_vs_boxed", "share", "overhead", "tv", "predicted_tau"];

/// Default relative tolerance floor: a metric must worsen by more than
/// 25 % (or 3σ, whichever is larger) to fail the gate. Generous on
/// purpose — single-shot bench numbers on shared hosts jitter.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` — the reports only carry
/// measurement scalars, well inside the 2⁵³ exact-integer range.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact display form used in row keys and delta tables.
    pub fn display(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(v) => format_num(*v),
            Json::Str(s) => s.clone(),
            Json::Arr(xs) => {
                let mut out = String::from("[");
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&x.display());
                }
                out.push(']');
                out
            }
            Json::Obj(_) => "{..}".into(),
        }
    }
}

fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad utf-8 in number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                            // Reports never emit surrogate pairs; map lone
                            // surrogates to U+FFFD rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| self.err("bad utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document, requiring the whole input to be consumed.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Bench-report model
// ---------------------------------------------------------------------------

/// One parsed `BENCH_<experiment>.json` report: its experiment name plus
/// measurement rows (field order preserved).
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// Experiment id, e.g. `"e19_batched_throughput"`.
    pub experiment: String,
    /// Measurement rows, each an ordered list of `(name, value)` cells.
    pub rows: Vec<Vec<(String, Json)>>,
}

/// Parses a `pp-bench/v1` report.
pub fn parse_bench_file(text: &str) -> Result<BenchFile, String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "pp-bench/v1" {
        return Err(format!("unsupported schema {schema:?} (want \"pp-bench/v1\")"));
    }
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("report has no \"experiment\" field")?
        .to_owned();
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows
            .iter()
            .map(|r| match r {
                Json::Obj(fields) => Ok(fields.clone()),
                _ => Err("row is not an object".to_owned()),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("report has no \"rows\" array".to_owned()),
    };
    Ok(BenchFile { experiment, rows })
}

/// The identity key of a row: every cell that is neither a compared metric,
/// a `<metric>_std` companion, nor excluded, rendered as `k=v` joined by
/// spaces. Two reports' rows are matched on this key.
pub fn row_key(row: &[(String, Json)]) -> String {
    let mut key = String::new();
    for (k, v) in row {
        if METRICS.contains(&k.as_str()) || EXCLUDED.contains(&k.as_str()) {
            continue;
        }
        if let Some(base) = k.strip_suffix("_std") {
            if METRICS.contains(&base) {
                continue;
            }
        }
        if !key.is_empty() {
            key.push(' ');
        }
        let _ = write!(key, "{k}={}", v.display());
    }
    key
}

/// Multiplies every whitelisted metric by `factor`, in memory. Used by the
/// gate's `--self-test` to fake a uniform slowdown and prove that the
/// comparison actually fails on it.
pub fn inflate_metrics(file: &mut BenchFile, factor: f64) {
    for row in &mut file.rows {
        for (k, v) in row.iter_mut() {
            if METRICS.contains(&k.as_str()) {
                if let Json::Num(x) = v {
                    *x *= factor;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Experiment the row belongs to.
    pub experiment: String,
    /// The row's identity key.
    pub key: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change `(current - baseline) / baseline`; positive = slower.
    pub rel: f64,
    /// Relative threshold this row was judged against.
    pub threshold: f64,
    /// Whether `rel > threshold` (a regression).
    pub regressed: bool,
}

/// Full outcome of a comparison run.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Per-metric deltas for every matched row.
    pub deltas: Vec<Delta>,
    /// Hard failures other than metric regressions: missing rows, missing
    /// metrics, unreadable files. Any entry fails the gate.
    pub problems: Vec<String>,
    /// Informational notes (new rows, skipped files).
    pub notes: Vec<String>,
}

impl CompareOutcome {
    /// Number of metric regressions.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// Whether the gate passes: no regressions and no structural problems.
    pub fn passed(&self) -> bool {
        self.regressions() == 0 && self.problems.is_empty()
    }
}

/// Compares every baseline row of `baseline` against `current`.
///
/// `tolerance` is the relative noise floor; a `<metric>_std` cell in the
/// baseline row widens it to `3·σ/baseline` when that is larger.
pub fn compare_files(baseline: &BenchFile, current: &BenchFile, tolerance: f64, out: &mut CompareOutcome) {
    let exp = &baseline.experiment;
    let current_keys: Vec<String> = current.rows.iter().map(|r| row_key(r)).collect();
    let mut matched = vec![false; current.rows.len()];
    for brow in &baseline.rows {
        let key = row_key(brow);
        let Some(ci) = current_keys.iter().position(|k| *k == key) else {
            out.problems.push(format!("{exp}: baseline row [{key}] missing from current report"));
            continue;
        };
        matched[ci] = true;
        let crow = &current.rows[ci];
        for (name, bval) in brow {
            if !METRICS.contains(&name.as_str()) {
                continue;
            }
            let Some(b) = bval.as_f64() else { continue };
            let Some(c) = crow.iter().find(|(k, _)| k == name).and_then(|(_, v)| v.as_f64()) else {
                out.problems.push(format!("{exp}: [{key}] lost metric {name}"));
                continue;
            };
            let sigma_rel = brow
                .iter()
                .find(|(k, _)| *k == format!("{name}_std"))
                .and_then(|(_, v)| v.as_f64())
                .map(|s| if b != 0.0 { (s / b).abs() } else { 0.0 })
                .unwrap_or(0.0);
            let threshold = tolerance.max(3.0 * sigma_rel);
            let rel = if b != 0.0 { (c - b) / b } else if c == 0.0 { 0.0 } else { f64::INFINITY };
            out.deltas.push(Delta {
                experiment: exp.clone(),
                key: key.clone(),
                metric: name.clone(),
                baseline: b,
                current: c,
                rel,
                threshold,
                regressed: rel > threshold,
            });
        }
    }
    for (ci, hit) in matched.iter().enumerate() {
        if !hit {
            out.notes.push(format!("{exp}: new row [{}] (no baseline)", current_keys[ci]));
        }
    }
}

/// Compares every `BENCH_*.json` in `baseline_dir` against the same-named
/// file in `current_dir`. Baseline files with no current counterpart are
/// skipped with a note — a local run may regenerate only a subset — but an
/// unreadable or unparsable file on either side is a problem.
pub fn compare_dirs(baseline_dir: &Path, current_dir: &Path, tolerance: f64) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            out.problems.push(format!("cannot read baseline dir {}: {e}", baseline_dir.display()));
            return out;
        }
    };
    names.sort();
    if names.is_empty() {
        out.problems.push(format!("no BENCH_*.json baselines in {}", baseline_dir.display()));
        return out;
    }
    for name in names {
        let bpath = baseline_dir.join(&name);
        let cpath = current_dir.join(&name);
        if !cpath.exists() {
            out.notes.push(format!("{name}: not present in current dir, skipped"));
            continue;
        }
        let baseline = match std::fs::read_to_string(&bpath).map_err(|e| e.to_string()).and_then(|t| parse_bench_file(&t)) {
            Ok(f) => f,
            Err(e) => {
                out.problems.push(format!("{}: {e}", bpath.display()));
                continue;
            }
        };
        let current = match std::fs::read_to_string(&cpath).map_err(|e| e.to_string()).and_then(|t| parse_bench_file(&t)) {
            Ok(f) => f,
            Err(e) => {
                out.problems.push(format!("{}: {e}", cpath.display()));
                continue;
            }
        };
        compare_files(&baseline, &current, tolerance, &mut out);
    }
    if out.deltas.is_empty() && out.problems.is_empty() {
        out.problems.push(format!(
            "nothing compared: no current report in {} matches a baseline",
            current_dir.display()
        ));
    }
    out
}

/// Renders the per-row delta table plus a summary line (mean/σ/worst of the
/// relative deltas, via [`Welford`]) and any problems/notes.
pub fn render_report(out: &CompareOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:<44} {:>12} {:>12} {:>12} {:>8} {:>8}  verdict",
        "experiment", "row", "metric", "baseline", "current", "delta", "thresh"
    );
    let width = 24 + 1 + 44 + 1 + 12 + 1 + 12 + 1 + 12 + 1 + 8 + 1 + 8 + 2 + 7;
    let _ = writeln!(s, "{}", "-".repeat(width));
    let mut rels = Welford::new();
    let mut worst: Option<&Delta> = None;
    for d in &out.deltas {
        rels.push(d.rel);
        if worst.map(|w| d.rel > w.rel).unwrap_or(true) {
            worst = Some(d);
        }
        let _ = writeln!(
            s,
            "{:<24} {:<44} {:>12} {:>12.4} {:>12.4} {:>+7.1}% {:>+7.1}%  {}",
            d.experiment,
            truncate(&d.key, 44),
            d.metric,
            d.baseline,
            d.current,
            d.rel * 100.0,
            d.threshold * 100.0,
            if d.regressed { "REGRESSED" } else { "ok" },
        );
    }
    for note in &out.notes {
        let _ = writeln!(s, "note: {note}");
    }
    for problem in &out.problems {
        let _ = writeln!(s, "PROBLEM: {problem}");
    }
    if rels.count() > 0 {
        let _ = writeln!(
            s,
            "{} metrics compared: mean delta {:+.2}%, sd {:.2}%, worst {:+.2}% ({})",
            rels.count(),
            rels.mean() * 100.0,
            rels.std_dev() * 100.0,
            rels.max() * 100.0,
            worst.map(|d| format!("{}: {} [{}]", d.experiment, d.metric, truncate(&d.key, 44))).unwrap_or_default(),
        );
    }
    let _ = writeln!(
        s,
        "{}",
        if out.passed() {
            format!("PASS: no regressions ({} problems, {} notes)", out.problems.len(), out.notes.len())
        } else {
            format!("FAIL: {} regressions, {} problems", out.regressions(), out.problems.len())
        }
    );
    s
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(exp: &str, rows: Vec<Vec<(&str, Json)>>) -> BenchFile {
        BenchFile {
            experiment: exp.into(),
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
                .collect(),
        }
    }

    #[test]
    fn parser_round_trips_a_real_report_shape() {
        let text = r#"{"schema":"pp-bench/v1","experiment":"e19","unix_time":1785972958,
          "meta":{"smoke":false,"k_seq":2000000},
          "rows":[
            {"case":"majority_step","n":1000,"ns_per_step":29.1564715},
            {"case":"majority_batched","n":1000,"ns_per_step":12.311794,"speedup":2.3681740857587448}
        ]}"#;
        let f = parse_bench_file(text).unwrap();
        assert_eq!(f.experiment, "e19");
        assert_eq!(f.rows.len(), 2);
        assert_eq!(row_key(&f.rows[0]), "case=majority_step n=1000");
        // speedup is excluded from the key.
        assert_eq!(row_key(&f.rows[1]), "case=majority_batched n=1000");
    }

    #[test]
    fn parser_handles_escapes_nulls_and_nested_values() {
        let v = parse_json(r#"{"a":"x\n\"yA","b":[null,true,-2.5e1],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("b"), Some(&Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-25.0)])));
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":}").is_err());
    }

    #[test]
    fn within_tolerance_passes_and_beyond_fails() {
        let baseline = file("e", vec![vec![("case", Json::Str("a".into())), ("ns_per_step", Json::Num(10.0))]]);
        let mut slow = baseline.clone();
        inflate_metrics(&mut slow, 1.2); // +20% < 25% floor
        let mut out = CompareOutcome::default();
        compare_files(&baseline, &slow, DEFAULT_TOLERANCE, &mut out);
        assert!(out.passed(), "{out:?}");

        let mut slower = baseline.clone();
        inflate_metrics(&mut slower, 1.5); // +50% > 25% floor
        let mut out = CompareOutcome::default();
        compare_files(&baseline, &slower, DEFAULT_TOLERANCE, &mut out);
        assert_eq!(out.regressions(), 1);
        assert!(!out.passed());
        assert!(render_report(&out).contains("REGRESSED"));
    }

    #[test]
    fn std_companion_widens_the_threshold() {
        // σ_rel = 2/10 → 3σ = 60% > 25% floor; +50% must now pass.
        let baseline = file(
            "e",
            vec![vec![
                ("case", Json::Str("a".into())),
                ("wall_s", Json::Num(10.0)),
                ("wall_s_std", Json::Num(2.0)),
            ]],
        );
        let current = file(
            "e",
            vec![vec![
                ("case", Json::Str("a".into())),
                ("wall_s", Json::Num(15.0)),
                ("wall_s_std", Json::Num(2.0)),
            ]],
        );
        let mut out = CompareOutcome::default();
        compare_files(&baseline, &current, DEFAULT_TOLERANCE, &mut out);
        assert!(out.passed(), "{out:?}");
        assert!((out.deltas[0].threshold - 0.6).abs() < 1e-12);
        // The _std companion must not leak into the row key.
        assert_eq!(out.deltas[0].key, "case=a");
    }

    #[test]
    fn missing_rows_and_metrics_are_problems_improvements_pass() {
        let baseline = file(
            "e",
            vec![
                vec![("case", Json::Str("gone".into())), ("ns_per_step", Json::Num(5.0))],
                vec![("case", Json::Str("kept".into())), ("ns_per_step", Json::Num(10.0))],
            ],
        );
        let current = file(
            "e",
            vec![
                vec![("case", Json::Str("kept".into())), ("ns_per_step", Json::Num(1.0))],
                vec![("case", Json::Str("fresh".into())), ("ns_per_step", Json::Num(9.0))],
            ],
        );
        let mut out = CompareOutcome::default();
        compare_files(&baseline, &current, DEFAULT_TOLERANCE, &mut out);
        assert_eq!(out.regressions(), 0, "10 → 1 is an improvement");
        assert_eq!(out.problems.len(), 1, "{:?}", out.problems);
        assert!(out.problems[0].contains("case=gone"));
        assert_eq!(out.notes.len(), 1);
        assert!(out.notes[0].contains("case=fresh"));
        assert!(!out.passed(), "a lost row fails the gate");
    }

    #[test]
    fn self_test_inflation_trips_the_gate_on_every_metric() {
        let baseline = file(
            "e",
            vec![vec![
                ("case", Json::Str("a".into())),
                ("ns_per_step", Json::Num(10.0)),
                ("us_per_run", Json::Num(3.0)),
                ("wall_s", Json::Num(1.0)),
            ]],
        );
        let mut slow = baseline.clone();
        inflate_metrics(&mut slow, 1.5);
        let mut out = CompareOutcome::default();
        compare_files(&baseline, &slow, DEFAULT_TOLERANCE, &mut out);
        assert_eq!(out.regressions(), 3);
    }
}
