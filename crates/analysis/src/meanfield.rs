//! Mean-field (fluid-limit) ODE fast path: `O(1)`-memory simulation for
//! `n → ∞`.
//!
//! The batched and CSR engines made the *per-interaction* cost nearly free,
//! but total cost still grows with the interaction count — "what does
//! `n = 10¹²` do?" is unanswerable by exact simulation. Bournez et al.,
//! "On the Convergence of Population Protocols When Population Goes to
//! Infinity", show the rescaled occupancy trajectory `x(τ) = C(τ·n)/n`
//! of a protocol under uniform random pairing converges (in probability,
//! uniformly on compact time intervals) to the solution of a deterministic
//! ODE as `n → ∞`. This module derives that ODE **directly from the
//! transition table** of any registered protocol, integrates it with a
//! hand-rolled adaptive Dormand–Prince RK45 (zero new dependencies), and
//! optionally carries a linear-noise (Gaussian) correction so mid-scale
//! `n` gets error bars instead of just the deterministic limit.
//!
//! # The drift field and its normalization
//!
//! The count engines draw **ordered** pairs of distinct agents uniformly
//! (the conjugating-automata convention of §6: `n(n−1)` ordered pairs).
//! Per interaction, the expected occupancy-count change of state `s` is
//!
//! ```text
//! E[ΔC_s] = Σ_{(p,q)}  c_p (c_q − [p=q]) / (n(n−1)) · δ_{(p,q),s}
//! ```
//!
//! where `δ_{(p,q),s}` is the net change of state `s` under the rule
//! `δ(p, q)`. Measuring time in *parallel time* `τ = interactions / n`
//! (the convention every stabilization report in this workspace uses) and
//! letting `n → ∞` with `x = C/n` fixed gives the **drift field**
//!
//! ```text
//! dx_s/dτ  =  F_s(x)  =  Σ_{(p,q) reactive}  x_p · x_q · δ_{(p,q),s}
//! ```
//!
//! a degree-2 polynomial over the occupancy simplex, compiled here as a
//! sparse term list by [`DriftField::derive`] from
//! `DenseRuntime::transition_table`. Schedulers with a different pairing
//! convention rescale time only: an unordered-meeting scheduler runs the
//! same field at half the rate. [`DriftField::jacobian`] differentiates the
//! field by *central finite differences, which are exact on a quadratic
//! polynomial* (the error term carries the third derivative, identically
//! zero) — no symbolic machinery needed.
//!
//! # Diffusion (linear-noise) correction
//!
//! For finite `n` the trajectory fluctuates around the fluid limit. The
//! linear-noise approximation expands `C/n = x(τ) + ξ/√n` and yields a
//! covariance ODE integrated alongside the mean:
//!
//! ```text
//! dΣ/dτ = A(x) Σ + Σ A(x)ᵀ + B(x),   A = ∂F/∂x,
//! B(x)  = Σ_{(p,q) reactive} x_p x_q · δ_{(p,q)} δ_{(p,q)}ᵀ
//! ```
//!
//! so `Std[C_s/n] ≈ √(Σ_ss / n)` — see [`MeanFieldRun::std_dev`].
//!
//! # Where the fluid limit is *not* trustworthy
//!
//! The convergence theorem is uniform on compact time intervals and for
//! macroscopic initial fractions. Two structural failure modes are
//! detected and flagged ([`Divergence`]) instead of silently returning
//! garbage:
//!
//! * **Microscopic initial fractions** — a state holding `o(√n)` agents
//!   (e.g. a single infected seed) has relative fluctuations of order 1,
//!   so the finite-`n` trajectory is time-shifted by a random `Θ(1)`
//!   offset the deterministic limit cannot represent.
//! * **Vanishing-rate bottlenecks** — when the residual dynamics of a
//!   vanishing state are dominated by interactions between *two* vanishing
//!   states, the finite-`n` rate is `Θ(1/n²)` per interaction (`O(1)`
//!   agents meeting each other) while the fluid limit sees a smooth `x²`
//!   term: leader election's last-two-leaders duel is the canonical case —
//!   the ODE predicts an `n`-independent `1/(1+τ)` decay, the finite-`n`
//!   law needs `Θ(n)` parallel time.
//!
//! # Example
//!
//! ```
//! use pp_analysis::meanfield::{MeanField, MeanFieldOptions};
//! use pp_core::{FnProtocol, Simulation};
//!
//! // One-way epidemic, 2% infected: dx_I/dτ = 2·x_I·(1−x_I).
//! let epidemic = FnProtocol::new(
//!     |&b: &bool| b,
//!     |&q: &bool| q,
//!     |&p: &bool, &q: &bool| (p || q, p || q),
//! );
//! let mut sim = Simulation::from_counts(epidemic, [(true, 20_000u64), (false, 980_000)]);
//! let mf = MeanField::from_simulation(&mut sim);
//! let run = mf.run(&MeanFieldOptions::default());
//! assert!(run.divergences().is_empty());
//! // The logistic front saturates: terminal infected fraction ≈ 1.
//! let x = run.terminal_fractions();
//! assert!(x.iter().any(|&f| f > 0.999));
//! // Same question at n = 10¹²: O(1) memory, the ODE does not change.
//! let big = mf.with_population(1_000_000_000_000).run(&MeanFieldOptions::default());
//! assert!(big.predicted_stabilization_time(1e-3).unwrap() < 25.0);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use pp_core::registry::{DenseRuntime, StateId};
use pp_core::trace::Tracer;
use pp_core::{Probe, Protocol, Simulation};

use crate::linalg::Matrix;

// ---------------------------------------------------------------------------
// Drift field
// ---------------------------------------------------------------------------

/// One reactive ordered pair `(p, q)` of the compiled drift: fires at rate
/// `x_p · x_q` and applies the sparse net occupancy change `delta`.
#[derive(Debug, Clone, PartialEq)]
struct DriftTerm {
    p: u32,
    q: u32,
    /// Net occupancy change per state, nonzero entries only.
    delta: Vec<(u32, f64)>,
}

/// The compiled fluid-limit vector field of one protocol: a sparse list of
/// degree-2 terms over the occupancy simplex (see the [module
/// docs](self) for the derivation and rate normalization).
///
/// Derivation walks the full transition table once; share the result across
/// runs and populations through a [`DriftCache`] (fields are handed out as
/// `Arc<DriftField>`, so repeated queries on the same protocol pay
/// derivation exactly once).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftField {
    dim: usize,
    terms: Vec<DriftTerm>,
}

impl DriftField {
    /// Compiles the drift field from a protocol's transition table: closes
    /// the state space under `δ` starting from `support` (see
    /// `DenseRuntime::transition_table`), then folds every *reactive*
    /// ordered pair into a sparse term. No-op pairs vanish (their net
    /// change is zero) — the term list is exactly the protocol's reactive
    /// pair set.
    pub fn derive<P: Protocol>(rt: &mut DenseRuntime<P>, support: &[StateId]) -> Self {
        let table = rt.transition_table(support);
        let dim = rt.state_count();
        let mut terms = Vec::new();
        let mut net = vec![0.0f64; dim];
        for ((p, q), (p2, q2)) in table {
            net[p.index()] -= 1.0;
            net[q.index()] -= 1.0;
            net[p2.index()] += 1.0;
            net[q2.index()] += 1.0;
            let delta: Vec<(u32, f64)> = net
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d != 0.0)
                .map(|(s, &d)| (s as u32, d))
                .collect();
            for &(s, _) in &delta {
                net[s as usize] = 0.0;
            }
            if !delta.is_empty() {
                terms.push(DriftTerm { p: p.0, q: q.0, delta });
            }
        }
        Self { dim, terms }
    }

    /// Number of states (the dimension of the occupancy simplex).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of reactive ordered pairs (nonzero terms of the field).
    pub fn reactive_pairs(&self) -> usize {
        self.terms.len()
    }

    /// Evaluates the drift `F(x)` into `out` (`out.len() == dim`).
    pub fn eval(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for t in &self.terms {
            let rate = x[t.p as usize] * x[t.q as usize];
            for &(s, d) in &t.delta {
                out[s as usize] += rate * d;
            }
        }
    }

    /// The Jacobian `A = ∂F/∂x` at `x`, by central finite differences with
    /// step `h = 1/2` — **exact** on this field (each `F_s` is a quadratic
    /// polynomial, so the `O(h²)` error term, which carries the third
    /// derivative, is identically zero; the wide step keeps the difference
    /// far from float cancellation).
    pub fn jacobian(&self, x: &[f64]) -> Matrix {
        let h = 0.5;
        let mut jac = Matrix::zeros(self.dim, self.dim);
        let mut xp = x.to_vec();
        let mut fp = vec![0.0; self.dim];
        let mut fm = vec![0.0; self.dim];
        for j in 0..self.dim {
            xp[j] = x[j] + h;
            self.eval(&xp, &mut fp);
            xp[j] = x[j] - h;
            self.eval(&xp, &mut fm);
            xp[j] = x[j];
            for s in 0..self.dim {
                jac[(s, j)] = (fp[s] - fm[s]) / (2.0 * h);
            }
        }
        jac
    }

    /// The diffusion matrix `B(x) = Σ_t x_p x_q · δ_t δ_tᵀ` of the
    /// linear-noise correction (see the [module docs](self)).
    pub fn diffusion(&self, x: &[f64]) -> Matrix {
        let mut b = Matrix::zeros(self.dim, self.dim);
        for t in &self.terms {
            let rate = x[t.p as usize] * x[t.q as usize];
            for &(s1, d1) in &t.delta {
                for &(s2, d2) in &t.delta {
                    b[(s1 as usize, s2 as usize)] += rate * d1 * d2;
                }
            }
        }
        b
    }
}

// ---------------------------------------------------------------------------
// Drift cache
// ---------------------------------------------------------------------------

/// A keyed cache of compiled drift fields: repeated mean-field queries on
/// the same protocol (the protocol-as-a-service reuse path) pay the
/// transition-table walk once and share the compiled field by `Arc`.
///
/// The key must identify the protocol *and* its initial support closure —
/// two supports with different `δ`-closures are different fields.
#[derive(Debug, Default)]
pub struct DriftCache {
    fields: HashMap<String, Arc<DriftField>>,
}

impl DriftCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached field for `key`, deriving and inserting it on
    /// first use.
    pub fn get_or_derive<P: Protocol>(
        &mut self,
        key: &str,
        rt: &mut DenseRuntime<P>,
        support: &[StateId],
    ) -> Arc<DriftField> {
        if let Some(f) = self.fields.get(key) {
            return Arc::clone(f);
        }
        let field = Arc::new(DriftField::derive(rt, support));
        self.fields.insert(key.to_string(), Arc::clone(&field));
        field
    }

    /// Number of cached fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Whether `key` has a compiled field.
    pub fn contains(&self, key: &str) -> bool {
        self.fields.contains_key(key)
    }
}

// ---------------------------------------------------------------------------
// MeanField: a compiled field + an initial condition + a population
// ---------------------------------------------------------------------------

/// A mean-field problem instance: compiled drift field, initial occupancy
/// fractions, and the (arbitrarily large) population the answers are
/// phrased for. Integration cost is independent of the population — `n`
/// only scales the interaction-index axis of the emitted samples and the
/// `1/√n` width of the diffusion correction.
#[derive(Debug, Clone)]
pub struct MeanField {
    field: Arc<DriftField>,
    init: Vec<f64>,
    population: u64,
}

impl MeanField {
    /// Builds an instance from a compiled field, initial fractions (padded
    /// or truncated to the field dimension; must sum to ≈ 1), and a
    /// population.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or do not sum to 1 within
    /// `1e-9`, or if `population < 2`.
    pub fn new(field: Arc<DriftField>, mut init: Vec<f64>, population: u64) -> Self {
        assert!(population >= 2, "population must have at least 2 agents");
        init.resize(field.dim(), 0.0);
        assert!(init.iter().all(|&v| v >= 0.0), "fractions must be non-negative");
        let total: f64 = init.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "fractions must sum to 1, got {total}"
        );
        Self { field, init, population }
    }

    /// Derives the instance from a count-engine simulation's current
    /// configuration: the drift field from its runtime's transition table,
    /// the initial fractions from its occupancy, the population from its
    /// size. The runtime's state space is closed under `δ` as a side
    /// effect (ids already interned keep their values).
    pub fn from_simulation<P: Protocol, Pr: Probe, Tr: Tracer>(
        sim: &mut Simulation<P, Pr, Tr>,
    ) -> Self {
        let n = sim.population();
        let support: Vec<StateId> =
            sim.config().support().map(|(s, _)| s).collect();
        let counts: Vec<u64> = sim.config().as_slice().to_vec();
        let field = Arc::new(DriftField::derive(sim.runtime_mut(), &support));
        let mut init: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        init.resize(field.dim(), 0.0);
        Self { field, init, population: n }
    }

    /// The same problem rephrased for a different population — the
    /// `n = 10¹²` query: identical ODE, `O(1)` memory, only the sample
    /// axis and the diffusion width change.
    pub fn with_population(&self, population: u64) -> Self {
        assert!(population >= 2, "population must have at least 2 agents");
        Self { field: Arc::clone(&self.field), init: self.init.clone(), population }
    }

    /// The compiled drift field (shared).
    pub fn field(&self) -> &Arc<DriftField> {
        &self.field
    }

    /// The initial occupancy fractions.
    pub fn init_fractions(&self) -> &[f64] {
        &self.init
    }

    /// The population the run's samples are phrased for.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Integrates the fluid limit and returns the run. See
    /// [`MeanFieldOptions`] for the knobs; cost is independent of
    /// [`population`](Self::population).
    ///
    /// # Panics
    ///
    /// Panics if `opts.diffusion` is set and the state space has more than
    /// 64 states (the covariance ODE is `dim²`-dimensional).
    pub fn run(&self, opts: &MeanFieldOptions) -> MeanFieldRun {
        integrate(self, opts)
    }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Integration and detection knobs for [`MeanField::run`].
#[derive(Debug, Clone)]
pub struct MeanFieldOptions {
    /// Relative local-error tolerance of the RK45 controller.
    pub rtol: f64,
    /// Absolute local-error tolerance of the RK45 controller.
    pub atol: f64,
    /// Integration horizon in parallel time (`τ = interactions / n`).
    pub horizon: f64,
    /// Integrate the linear-noise covariance ODE alongside the mean.
    pub diffusion: bool,
    /// Geometric factor of the log-spaced sample schedule (matches
    /// `TrajectoryProbe`'s convention).
    pub growth: f64,
    /// Sample cap; the schedule decimates and squares its factor when full
    /// (again matching `TrajectoryProbe`).
    pub max_samples: usize,
    /// Fractions below this count as *vanishing* for divergence detection.
    pub vanish_tol: f64,
    /// Early stop: the run is *quiescent* once `‖F(x)‖₁` falls below this.
    pub quiescence_tol: f64,
    /// Hard cap on accepted+rejected steps (runaway guard).
    pub max_steps: u64,
}

impl Default for MeanFieldOptions {
    fn default() -> Self {
        Self {
            rtol: 1e-6,
            atol: 1e-9,
            horizon: 200.0,
            diffusion: false,
            growth: 1.25,
            max_samples: 1024,
            vanish_tol: 1e-2,
            quiescence_tol: 1e-10,
            max_steps: 1_000_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Divergence detection
// ---------------------------------------------------------------------------

/// A structural reason the fluid limit is expected to part from the
/// finite-`n` law (see the [module docs](self) for both mechanisms).
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// An initially occupied state holds `o(√n)` agents: its relative
    /// fluctuation is order 1, so the finite-`n` trajectory is shifted by
    /// a random time offset the deterministic limit cannot see.
    MicroscopicInitialFraction {
        /// The offending state.
        state: StateId,
        /// Its initial fraction.
        fraction: f64,
        /// `fraction · n` — the expected number of agents behind it.
        expected_agents: f64,
    },
    /// At the end of integration, a vanishing state's residual dynamics
    /// are dominated by interactions between two vanishing states: the
    /// finite-`n` rate there is `Θ(1/n²)` per interaction (leader
    /// election's last-duel bottleneck), which the fluid limit smooths
    /// into an `n`-independent tail.
    VanishingRateBottleneck {
        /// The vanishing state whose drift is bottlenecked.
        state: StateId,
        /// Its terminal fraction.
        fraction: f64,
        /// Share of its terminal drift mass carried by
        /// vanishing×vanishing terms (`> 1/2` triggers the flag).
        quadratic_share: f64,
    },
}

fn detect_divergences(
    field: &DriftField,
    init: &[f64],
    terminal: &[f64],
    population: u64,
    vanish_tol: f64,
) -> Vec<Divergence> {
    let mut out = Vec::new();
    let n = population as f64;
    let micro_floor = n.sqrt();
    for (s, &f) in init.iter().enumerate() {
        if f > 0.0 && f * n < micro_floor {
            out.push(Divergence::MicroscopicInitialFraction {
                state: StateId(s as u32),
                fraction: f,
                expected_agents: f * n,
            });
        }
    }
    // Terminal rate-bottleneck scan: for each vanishing state, split its
    // drift mass into quadratic-vanishing terms vs the rest.
    let vanishing: Vec<bool> = terminal.iter().map(|&x| x < vanish_tol).collect();
    let mut all_mass = vec![0.0f64; field.dim];
    let mut quad_mass = vec![0.0f64; field.dim];
    for t in &field.terms {
        let rate = (terminal[t.p as usize] * terminal[t.q as usize]).abs();
        let quad = vanishing[t.p as usize] && vanishing[t.q as usize];
        for &(s, d) in &t.delta {
            all_mass[s as usize] += rate * d.abs();
            if quad {
                quad_mass[s as usize] += rate * d.abs();
            }
        }
    }
    for s in 0..field.dim {
        if vanishing[s] && all_mass[s] > 0.0 && quad_mass[s] > 0.5 * all_mass[s] {
            out.push(Divergence::VanishingRateBottleneck {
                state: StateId(s as u32),
                fraction: terminal[s],
                quadratic_share: quad_mass[s] / all_mass[s],
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The Dormand–Prince RK45 integrator
// ---------------------------------------------------------------------------

/// Dense-output coefficients of one accepted step: the standard DOPRI5
/// quartic interpolant `y(t₀+θh) = r₁ + θ(r₂ + (1−θ)(r₃ + θ(r₄ + (1−θ)r₅)))`.
#[derive(Debug, Clone)]
struct DenseSegment {
    t0: f64,
    h: f64,
    rcont: [Vec<f64>; 5],
}

impl DenseSegment {
    fn eval_into(&self, t: f64, out: &mut [f64]) {
        let th = ((t - self.t0) / self.h).clamp(0.0, 1.0);
        let th1 = 1.0 - th;
        for (i, o) in out.iter_mut().enumerate() {
            let [r1, r2, r3, r4, r5] = &self.rcont;
            *o = r1[i] + th * (r2[i] + th1 * (r3[i] + th * (r4[i] + th1 * r5[i])));
        }
    }
}

/// Butcher tableau of the Dormand–Prince 5(4) pair.
const A: [[f64; 6]; 6] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0, 0.0, 0.0],
    [9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0, 0.0],
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0],
];
/// Error coefficients `b − b̂` (5th-order weights minus the embedded 4th).
const E: [f64; 7] = [
    71.0 / 57600.0,
    0.0,
    -71.0 / 16695.0,
    71.0 / 1920.0,
    -17253.0 / 339200.0,
    22.0 / 525.0,
    -1.0 / 40.0,
];
/// Dense-output weights (Hairer's DOPRI5 `d` vector).
const D: [f64; 7] = [
    -12715105075.0 / 11282082432.0,
    0.0,
    87487479700.0 / 32700410799.0,
    -10690763975.0 / 1880347072.0,
    701980252875.0 / 199316789632.0,
    -1453857185.0 / 822651844.0,
    69997945.0 / 29380423.0,
];

/// Shared right-hand side: mean drift, plus the covariance ODE when the
/// state vector carries `dim²` covariance entries behind the mean.
fn rhs(field: &DriftField, y: &[f64], dy: &mut [f64]) {
    let dim = field.dim;
    field.eval(&y[..dim], &mut dy[..dim]);
    if y.len() > dim {
        let a = field.jacobian(&y[..dim]);
        let b = field.diffusion(&y[..dim]);
        let cov = &y[dim..];
        let dcov = &mut dy[dim..];
        // dΣ = AΣ + ΣAᵀ + B, Σ stored row-major.
        for i in 0..dim {
            for j in 0..dim {
                let mut v = b[(i, j)];
                for k in 0..dim {
                    v += a[(i, k)] * cov[k * dim + j] + cov[i * dim + k] * a[(j, k)];
                }
                dcov[i * dim + j] = v;
            }
        }
    }
}

fn rms_error(err: &[f64], y0: &[f64], y1: &[f64], atol: f64, rtol: f64) -> f64 {
    let mut acc = 0.0;
    for i in 0..err.len() {
        let scale = atol + rtol * y0[i].abs().max(y1[i].abs());
        let e = err[i] / scale;
        acc += e * e;
    }
    (acc / err.len() as f64).sqrt()
}

fn integrate(mf: &MeanField, opts: &MeanFieldOptions) -> MeanFieldRun {
    let field = &*mf.field;
    let dim = field.dim;
    let n = mf.population;
    let ylen = if opts.diffusion {
        assert!(
            dim <= 64,
            "diffusion correction needs dim ≤ 64 (covariance is dim² entries), got {dim}"
        );
        dim + dim * dim
    } else {
        dim
    };

    let mut y = vec![0.0f64; ylen];
    y[..dim].copy_from_slice(&mf.init);
    let mut t = 0.0f64;

    let mut k: Vec<Vec<f64>> = vec![vec![0.0; ylen]; 7];
    {
        let mut k0 = std::mem::take(&mut k[0]);
        rhs(field, &y, &mut k0);
        k[0] = k0;
    }

    let mut segments: Vec<DenseSegment> = Vec::new();
    let mut sampler = SampleSchedule::new(opts.growth, opts.max_samples);
    let mut samples: Vec<(u64, Vec<u64>)> = Vec::new();
    sampler.emit(0, &y[..dim], n, &mut samples);

    let mut h = (opts.horizon * 1e-4).clamp(1e-10, 1e-2);
    let mut err_old: f64 = 1e-4;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut quiescent_at: Option<f64> = None;

    let mut ynew = vec![0.0f64; ylen];
    let mut ystage = vec![0.0f64; ylen];
    let mut errv = vec![0.0f64; ylen];

    let mut steps = 0u64;
    while t < opts.horizon && steps < opts.max_steps {
        steps += 1;
        h = h.min(opts.horizon - t);
        // Six derivative stages (k[0] carried over by FSAL), then k[6] at
        // the candidate endpoint.
        for s in 0..6 {
            for i in 0..ylen {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(s + 1) {
                    acc += A[s][j] * kj[i];
                }
                ystage[i] = y[i] + h * acc;
            }
            let mut ks = std::mem::take(&mut k[s + 1]);
            rhs(field, &ystage, &mut ks);
            k[s + 1] = ks;
            if s == 5 {
                ynew.copy_from_slice(&ystage);
            }
        }
        for i in 0..ylen {
            let mut e = 0.0;
            for (j, kj) in k.iter().enumerate() {
                e += E[j] * kj[i];
            }
            errv[i] = h * e;
        }
        let err = rms_error(&errv, &y, &ynew, opts.atol, opts.rtol);
        if err <= 1.0 {
            // Accept: store dense coefficients, advance, emit samples.
            let mut rcont: [Vec<f64>; 5] = [
                y.clone(),
                vec![0.0; ylen],
                vec![0.0; ylen],
                vec![0.0; ylen],
                vec![0.0; ylen],
            ];
            for i in 0..ylen {
                let dy = ynew[i] - y[i];
                rcont[1][i] = dy;
                rcont[2][i] = h * k[0][i] - dy;
                rcont[3][i] = dy - h * k[6][i] - rcont[2][i];
                let mut d = 0.0;
                for (j, kj) in k.iter().enumerate() {
                    d += D[j] * kj[i];
                }
                rcont[4][i] = h * d;
            }
            let seg = DenseSegment { t0: t, h, rcont };
            let t1 = t + h;
            sampler.emit_range(&seg, t1, dim, n, &mut samples);
            segments.push(seg);
            t = t1;
            y.copy_from_slice(&ynew);
            k.swap(0, 6); // FSAL
            accepted += 1;
            // Quiescence: ‖F(x)‖₁ on the mean part.
            let drift_l1: f64 = k[0][..dim].iter().map(|v| v.abs()).sum();
            if drift_l1 < opts.quiescence_tol {
                quiescent_at = Some(t);
                break;
            }
            let err_cl = err.max(1e-10);
            let fac = 0.9 * err_cl.powf(-0.7 / 5.0) * err_old.powf(0.4 / 5.0);
            h *= fac.clamp(0.2, 10.0);
            err_old = err_cl;
        } else {
            rejected += 1;
            h *= (0.9 * err.powf(-0.2)).clamp(0.2, 1.0);
        }
        if h < 1e-14 {
            // Step size collapsed — bail out with what we have rather than
            // spinning (cannot happen for polynomial fields in practice).
            break;
        }
    }

    // Terminal sample (exactly once, at the final time).
    let terminal_step = (t * n as f64).round() as u64;
    if samples.last().map(|&(s, _)| s) != Some(terminal_step) {
        sampler.emit(terminal_step, &y[..dim], n, &mut samples);
    }

    let divergences =
        detect_divergences(field, &mf.init, &y[..dim], n, opts.vanish_tol);

    MeanFieldRun {
        field: Arc::clone(&mf.field),
        population: n,
        dim,
        diffusion: opts.diffusion,
        segments,
        samples,
        terminal: y,
        terminal_time: t,
        quiescent_at,
        divergences,
        accepted_steps: accepted,
        rejected_steps: rejected,
    }
}

// ---------------------------------------------------------------------------
// Log-spaced sampling (TrajectoryProbe's schedule on the ODE time axis)
// ---------------------------------------------------------------------------

struct SampleSchedule {
    next: u64,
    growth: f64,
    max_samples: usize,
}

impl SampleSchedule {
    fn new(growth: f64, max_samples: usize) -> Self {
        assert!(growth > 1.0, "sampling factor must exceed 1, got {growth}");
        assert!(max_samples >= 8, "need at least 8 samples, got {max_samples}");
        Self { next: 0, growth, max_samples }
    }

    fn emit(&mut self, step: u64, x: &[f64], n: u64, out: &mut Vec<(u64, Vec<u64>)>) {
        if out.len() >= self.max_samples {
            let kept: Vec<_> = out.iter().step_by(2).cloned().collect();
            *out = kept;
            self.growth *= self.growth;
        }
        out.push((step, occupancy_counts(x, n)));
        let geometric = (step as f64 * self.growth).ceil() as u64;
        self.next = geometric.max(step + 1);
    }

    /// Emits every scheduled sample with `step/n` inside `(seg.t0, t1]`.
    fn emit_range(
        &mut self,
        seg: &DenseSegment,
        t1: f64,
        dim: usize,
        n: u64,
        out: &mut Vec<(u64, Vec<u64>)>,
    ) {
        let mut x = vec![0.0f64; dim];
        loop {
            let tau = self.next as f64 / n as f64;
            if tau > t1 {
                return;
            }
            let at = self.next;
            seg.eval_into(tau, &mut x);
            self.emit(at, &x, n, out);
        }
    }
}

/// Rounds fractions to occupancy counts summing to exactly `n`
/// (largest-remainder apportionment; negative float dust clamps to zero).
fn occupancy_counts(x: &[f64], n: u64) -> Vec<u64> {
    let clamped: Vec<f64> = x.iter().map(|&v| v.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        let mut out = vec![0u64; x.len().max(1)];
        out[0] = n;
        return out;
    }
    let mut counts: Vec<u64> = Vec::with_capacity(x.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(x.len());
    let mut placed = 0u64;
    for (i, &v) in clamped.iter().enumerate() {
        let ideal = v / total * n as f64;
        let fl = ideal.floor();
        counts.push(fl as u64);
        placed += fl as u64;
        fracs.push((ideal - fl, i));
    }
    let mut rem = n - placed.min(n);
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    for &(_, i) in &fracs {
        if rem == 0 {
            break;
        }
        counts[i] += 1;
        rem -= 1;
    }
    counts
}

// ---------------------------------------------------------------------------
// MeanFieldRun
// ---------------------------------------------------------------------------

/// The result of one fluid-limit integration: a dense trajectory over
/// parallel time, log-spaced occupancy samples phrased for the instance's
/// population (the same `(interaction index, occupancy)` shape
/// [`TrajectoryProbe::samples`](pp_core::observe::TrajectoryProbe::samples) emits, so every downstream consumer of
/// engine trajectories accepts mean-field ones unchanged), the optional
/// linear-noise covariance, and the divergence flags.
#[derive(Debug, Clone)]
pub struct MeanFieldRun {
    field: Arc<DriftField>,
    population: u64,
    dim: usize,
    diffusion: bool,
    segments: Vec<DenseSegment>,
    samples: Vec<(u64, Vec<u64>)>,
    /// Terminal state vector (mean, then covariance when enabled).
    terminal: Vec<f64>,
    terminal_time: f64,
    quiescent_at: Option<f64>,
    divergences: Vec<Divergence>,
    accepted_steps: u64,
    rejected_steps: u64,
}

impl MeanFieldRun {
    /// The recorded `(interaction index, occupancy)` series — the exact
    /// shape of [`TrajectoryProbe::samples`](pp_core::observe::TrajectoryProbe::samples), occupancies rounded to sum
    /// to the population (largest-remainder).
    pub fn samples(&self) -> &[(u64, Vec<u64>)] {
        &self.samples
    }

    /// The population the samples are phrased for.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The drift field the run integrated (shared with its [`MeanField`]).
    pub fn field(&self) -> &Arc<DriftField> {
        &self.field
    }

    /// Occupancy fractions at parallel time `tau`, by dense-output
    /// interpolation (clamped to the integrated range).
    pub fn fractions_at(&self, tau: f64) -> Vec<f64> {
        let mut out = vec![0.0f64; self.dim];
        if self.segments.is_empty() || tau >= self.terminal_time {
            out.copy_from_slice(&self.terminal[..self.dim]);
            return out;
        }
        let idx = self
            .segments
            .partition_point(|s| s.t0 + s.h < tau)
            .min(self.segments.len() - 1);
        self.segments[idx].eval_into(tau, &mut out);
        out
    }

    /// Occupancy counts at interaction index `step` (dense interpolation,
    /// largest-remainder rounding).
    pub fn occupancy_at_step(&self, step: u64) -> Vec<u64> {
        let tau = step as f64 / self.population as f64;
        occupancy_counts(&self.fractions_at(tau), self.population)
    }

    /// Terminal occupancy fractions.
    pub fn terminal_fractions(&self) -> &[f64] {
        &self.terminal[..self.dim]
    }

    /// Final integration time (parallel time).
    pub fn terminal_time(&self) -> f64 {
        self.terminal_time
    }

    /// Parallel time at which `‖F(x)‖₁` fell below the quiescence
    /// tolerance, if it did before the horizon. Protocols whose fluid
    /// limit never settles (rotating phase-clock pulses; leader election's
    /// polynomial tail) return `None` — often a companion signal to a
    /// [`Divergence`] flag.
    pub fn quiescent_at(&self) -> Option<f64> {
        self.quiescent_at
    }

    /// Structural reasons to distrust this fluid limit (empty = none
    /// detected). See [`Divergence`].
    pub fn divergences(&self) -> &[Divergence] {
        &self.divergences
    }

    /// `(accepted, rejected)` RK45 step counts.
    pub fn step_counts(&self) -> (u64, u64) {
        (self.accepted_steps, self.rejected_steps)
    }

    /// The earliest sampled parallel time `τ` such that every later
    /// sample stays within total-variation distance `eps` of the terminal
    /// fractions — the fluid-limit prediction of the stabilization time.
    ///
    /// Returns `None` when a [`Divergence`] was flagged: a predicted time
    /// from a distrusted limit is exactly the silent garbage this module
    /// refuses to return. (The trajectory itself stays inspectable through
    /// [`samples`](Self::samples).)
    pub fn predicted_stabilization_time(&self, eps: f64) -> Option<f64> {
        if !self.divergences.is_empty() {
            return None;
        }
        let terminal = &self.terminal[..self.dim];
        let mut hit = self.terminal_time;
        for (step, occ) in self.samples.iter().rev() {
            let total: u64 = occ.iter().sum();
            let tv = occ
                .iter()
                .enumerate()
                .map(|(i, &c)| (c as f64 / total as f64 - terminal[i].max(0.0)).abs())
                .sum::<f64>()
                / 2.0;
            if tv > eps {
                break;
            }
            hit = *step as f64 / self.population as f64;
        }
        Some(hit)
    }

    /// [`predicted_stabilization_time`](Self::predicted_stabilization_time)
    /// in interaction counts for this population.
    pub fn predicted_stabilization_interactions(&self, eps: f64) -> Option<u64> {
        self.predicted_stabilization_time(eps)
            .map(|tau| (tau * self.population as f64).ceil() as u64)
    }

    /// Linear-noise standard deviation of state `s`'s occupancy *fraction*
    /// at the terminal time: `√(Σ_ss / n)`. `None` unless the run was
    /// integrated with [`MeanFieldOptions::diffusion`].
    pub fn std_dev(&self, s: StateId) -> Option<f64> {
        if !self.diffusion {
            return None;
        }
        let cov = self.terminal[self.dim + s.index() * self.dim + s.index()];
        Some((cov.max(0.0) / self.population as f64).sqrt())
    }

    /// Full linear-noise covariance of the occupancy fractions at the
    /// terminal time (entries `Σ_ij / n`). `None` unless the run was
    /// integrated with [`MeanFieldOptions::diffusion`].
    pub fn covariance(&self) -> Option<Matrix> {
        if !self.diffusion {
            return None;
        }
        let mut m = Matrix::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                m[(i, j)] =
                    self.terminal[self.dim + i * self.dim + j] / self.population as f64;
            }
        }
        Some(m)
    }

    /// Maximum total-variation distance between this run and an engine
    /// trajectory (e.g. [`TrajectoryProbe::samples`](pp_core::observe::TrajectoryProbe::samples)): for each engine
    /// sample, the ODE occupancy is interpolated at the *same interaction
    /// index* and compared; occupancy vectors shorter than the field
    /// dimension are zero-padded (probes grow their vectors lazily).
    pub fn tv_against(&self, samples: &[(u64, Vec<u64>)]) -> f64 {
        let mut worst = 0.0f64;
        for (step, occ) in samples {
            let x = self.fractions_at(*step as f64 / self.population as f64);
            let total: u64 = occ.iter().sum();
            if total == 0 {
                continue;
            }
            let mut tv = 0.0;
            for (i, &xf) in x.iter().enumerate() {
                let ef = occ.get(i).copied().unwrap_or(0) as f64 / total as f64;
                tv += (ef - xf.max(0.0)).abs();
            }
            worst = worst.max(tv / 2.0);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::observe::TrajectoryProbe;
    use pp_core::{seeded_rng, FnProtocol};
    use pp_protocols::{ApproximateMajority, LeaderElection, PhaseClock};

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    /// Closed form of the epidemic fluid limit from infected fraction `x0`:
    /// logistic growth `x(τ) = x0·e^{2τ} / (1 − x0 + x0·e^{2τ})`.
    fn logistic(x0: f64, tau: f64) -> f64 {
        let g = x0 * (2.0 * tau).exp();
        g / (1.0 - x0 + g)
    }

    fn epidemic_mf(infected: u64, n: u64) -> MeanField {
        let mut sim =
            Simulation::from_counts(epidemic(), [(true, infected), (false, n - infected)]);
        MeanField::from_simulation(&mut sim)
    }

    #[test]
    fn epidemic_drift_is_the_logistic_field() {
        let mf = epidemic_mf(100_000, 1_000_000);
        let field = mf.field();
        assert_eq!(field.dim(), 2);
        // Reactive ordered pairs: (I, S) and (S, I).
        assert_eq!(field.reactive_pairs(), 2);
        // dx_I/dτ = 2·x_S·x_I at any point of the simplex.
        let mut f = vec![0.0; 2];
        // State ids: true (infected) interned first by from_counts order.
        let x = [0.3, 0.7];
        field.eval(&x, &mut f);
        assert!((f[0] - 2.0 * 0.3 * 0.7).abs() < 1e-12, "dx_I = {}", f[0]);
        assert!((f[1] + 2.0 * 0.3 * 0.7).abs() < 1e-12, "dx_S = {}", f[1]);
    }

    #[test]
    fn fd_jacobian_is_exact_on_the_quadratic_field() {
        let mf = epidemic_mf(100_000, 1_000_000);
        let x = [0.25, 0.75];
        let jac = mf.field().jacobian(&x);
        // F_I = 2·x_I·x_S: ∂/∂x_I = 2x_S, ∂/∂x_S = 2x_I; F_S = −F_I.
        assert!((jac[(0, 0)] - 2.0 * x[1]).abs() < 1e-9);
        assert!((jac[(0, 1)] - 2.0 * x[0]).abs() < 1e-9);
        assert!((jac[(1, 0)] + 2.0 * x[1]).abs() < 1e-9);
        assert!((jac[(1, 1)] + 2.0 * x[0]).abs() < 1e-9);
    }

    #[test]
    fn rk45_tracks_the_logistic_closed_form() {
        let mf = epidemic_mf(10_000, 1_000_000); // x0 = 1%
        let run = mf.run(&MeanFieldOptions::default());
        for tau in [0.5, 1.0, 2.5, 5.0, 8.0] {
            let got = run.fractions_at(tau)[0];
            let want = logistic(0.01, tau);
            assert!(
                (got - want).abs() < 1e-6,
                "x_I({tau}) = {got}, closed form {want}"
            );
        }
        assert!(run.quiescent_at().is_some(), "epidemic absorbs");
        assert!(run.divergences().is_empty());
    }

    #[test]
    fn leader_election_matches_its_closed_form_and_is_flagged() {
        // All-leaders start: dx_L/dτ = −x_L² ⇒ x_L(τ) = 1/(1+τ).
        let mut sim = Simulation::from_counts(LeaderElection, [((), 1_000_000u64)]);
        let mf = MeanField::from_simulation(&mut sim);
        let run = mf.run(&MeanFieldOptions::default());
        for tau in [1.0, 10.0, 100.0] {
            let got = run.fractions_at(tau)[0];
            let want = 1.0 / (1.0 + tau);
            assert!((got - want).abs() < 1e-6, "x_L({tau}) = {got} vs {want}");
        }
        // The 1/n-rate bottleneck must be flagged: the last leaders' duel
        // is a vanishing×vanishing interaction.
        let flags = run.divergences();
        assert!(
            flags.iter().any(|d| matches!(
                d,
                Divergence::VanishingRateBottleneck { quadratic_share, .. }
                    if *quadratic_share > 0.99
            )),
            "leader election must be flagged, got {flags:?}"
        );
        // And a prediction from a distrusted limit is refused.
        assert_eq!(run.predicted_stabilization_time(1e-3), None);
        assert!(run.quiescent_at().is_none(), "polynomial tail never settles");
    }

    #[test]
    fn approximate_majority_and_phase_clock_are_not_flagged() {
        let mut sim = Simulation::from_counts(
            ApproximateMajority,
            [(true, 600_000u64), (false, 400_000)],
        );
        let run = MeanField::from_simulation(&mut sim).run(&MeanFieldOptions::default());
        assert!(run.divergences().is_empty(), "AM wrongly flagged: {:?}", run.divergences());
        assert!(run.quiescent_at().is_some(), "AM absorbs at consensus");
        let term = run.terminal_fractions();
        assert!(term.iter().any(|&x| x > 0.999), "majority wins: {term:?}");

        let mut sim = Simulation::from_counts(PhaseClock::new(8), [((), 1_000_000u64)]);
        let opts = MeanFieldOptions { horizon: 30.0, ..Default::default() };
        let run = MeanField::from_simulation(&mut sim).run(&opts);
        assert!(
            run.divergences().is_empty(),
            "phase clock wrongly flagged: {:?}",
            run.divergences()
        );
    }

    #[test]
    fn microscopic_seed_is_flagged() {
        // A single infected agent in 10⁶: fraction 10⁻⁶ ≪ 1/√n.
        let run = epidemic_mf(1, 1_000_000).run(&MeanFieldOptions::default());
        assert!(matches!(
            run.divergences(),
            [Divergence::MicroscopicInitialFraction { expected_agents, .. }]
                if *expected_agents == 1.0
        ));
    }

    #[test]
    fn samples_are_trajectory_probe_shaped_and_sum_to_n() {
        let n = 1_000_000_000_000u64; // 10¹²: counts stay exact in u64
        let run = epidemic_mf(10, 1_000).with_population(n).run(&MeanFieldOptions::default());
        let samples = run.samples();
        assert!(samples.len() >= 8);
        assert_eq!(samples[0].0, 0, "first sample at interaction 0");
        assert_eq!(samples[0].1, vec![n / 100, n - n / 100]);
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0, "indices strictly increase");
        }
        for (_, occ) in samples {
            assert_eq!(occ.iter().sum::<u64>(), n, "largest-remainder preserves n");
        }
        // The run agrees with itself through the probe-shaped interface.
        assert!(run.tv_against(samples) < 1e-9);
    }

    #[test]
    fn stabilization_time_shrinks_with_looser_eps() {
        let run = epidemic_mf(10_000, 1_000_000).run(&MeanFieldOptions::default());
        let tight = run.predicted_stabilization_time(1e-4).unwrap();
        let loose = run.predicted_stabilization_time(1e-1).unwrap();
        assert!(loose <= tight, "loose {loose} vs tight {tight}");
        assert!(tight <= run.terminal_time());
        // Interactions scale linearly with n.
        let i6 = run.predicted_stabilization_interactions(1e-3).unwrap();
        assert!(i6 > 0);
    }

    #[test]
    fn diffusion_correction_gives_mid_scale_error_bars() {
        let n = 1_000_000u64;
        let opts = MeanFieldOptions { diffusion: true, horizon: 2.0, ..Default::default() };
        let run = epidemic_mf(100_000, n).run(&opts);
        // Mid-transition the infected count genuinely fluctuates: the LNA
        // std must be positive and of order 1/√n (not 0, not O(1)).
        let sd = run.std_dev(StateId(0)).unwrap();
        assert!(sd > 0.0, "LNA variance must be positive, got {sd}");
        assert!(sd < 0.01, "LNA std {sd} should be ≪ 1 at n = 10⁶");
        let cov = run.covariance().unwrap();
        // Two-state conservation: Σ_II ≈ Σ_SS ≈ −Σ_IS.
        assert!((cov[(0, 0)] - cov[(1, 1)]).abs() < 1e-12);
        assert!((cov[(0, 0)] + cov[(0, 1)]).abs() < 1e-12);
        // Without the flag the accessor stays None.
        let plain = epidemic_mf(100_000, n).run(&MeanFieldOptions::default());
        assert_eq!(plain.std_dev(StateId(0)), None);
    }

    #[test]
    fn drift_cache_derives_once() {
        let mut cache = DriftCache::new();
        let mut sim = Simulation::from_counts(epidemic(), [(true, 5u64), (false, 5)]);
        let support: Vec<StateId> = sim.config().support().map(|(s, _)| s).collect();
        let a = cache.get_or_derive("epidemic", sim.runtime_mut(), &support);
        let b = cache.get_or_derive("epidemic", sim.runtime_mut(), &support);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the compiled field");
        assert_eq!(cache.len(), 1);
        assert!(cache.contains("epidemic"));
    }

    #[test]
    fn ode_tracks_the_batched_engine_at_overlapping_n() {
        // The acceptance-shaped check at unit-test scale: TV between the
        // ODE trajectory and one batched-engine run at n = 10⁴ stays small
        // for a protocol with macroscopic fractions throughout.
        let n = 10_000u64;
        let mut sim = Simulation::from_counts(
            ApproximateMajority,
            [(true, 6 * n / 10), (false, 4 * n / 10)],
        );
        let mf = MeanField::from_simulation(&mut sim);
        let mut probed = sim.with_probe(TrajectoryProbe::new());
        let mut rng = seeded_rng(42);
        probed.run_batched(30 * n, &mut rng);
        let run = mf.run(&MeanFieldOptions::default());
        let tv = run.tv_against(probed.probe().samples());
        assert!(tv < 0.08, "ODE vs batched TV {tv} at n = 10⁴");
    }
}
