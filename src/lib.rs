//! # population-protocols
//!
//! A comprehensive Rust implementation of *"Computation in networks of
//! passively mobile finite-state sensors"* (Angluin, Aspnes, Diamadi,
//! Fischer, Peralta — PODC 2004): the population-protocol model, the
//! conjugating-automaton probabilistic layer, Presburger-to-protocol
//! compilation, restricted-interaction simulation, exact verification, and
//! the counter-machine/Turing-machine simulation stack.
//!
//! This crate is a facade re-exporting the workspace crates:
//!
//! * [`core`] — the model: protocols, configurations, schedulers, engine;
//! * [`graphs`] — interaction graphs;
//! * [`protocols`] — the concrete protocol library (thresholds, remainders,
//!   majority, leader election, combinators, the Theorem 7 simulator);
//! * [`presburger`] — Presburger arithmetic, quantifier elimination,
//!   semilinear sets, and the formula-to-protocol compiler;
//! * [`analysis`] — exact reachability/SCC verification and Markov-chain
//!   convergence analysis;
//! * [`server`] — protocol-as-a-service: the unified spec-driven run API
//!   (`RunSpec` → `pp-run/v1` report), the keyed compile cache, and the
//!   zero-dependency `pp-server` HTTP layer;
//! * [`machines`] — counter-machine and Turing-machine substrates;
//! * [`random`] — the conjugating-automaton constructions of §6 (urn
//!   process, zero test, leader election, counter and TM simulation);
//! * [`mod@bench`] — experiment-report plumbing and the `ppbench-compare`
//!   regression gate over `BENCH_*.json` baselines.
//!
//! # Quickstart
//!
//! ```
//! use population_protocols::core::prelude::*;
//!
//! // "At least five birds have elevated temperatures" (§1), as a protocol.
//! let count_to_five = FnProtocol::new(
//!     |&hot: &bool| u8::from(hot),
//!     |&q: &u8| q == 5,
//!     |&p: &u8, &q: &u8| if p + q >= 5 { (5, 5) } else { (p + q, 0) },
//! );
//! let mut sim = Simulation::from_counts(count_to_five, [(true, 7), (false, 93)]);
//! let mut rng = seeded_rng(0);
//! let report = sim.measure_stabilization(&true, 500_000, &mut rng);
//! assert!(report.converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pp_analysis as analysis;
pub use pp_bench as bench;
pub use pp_core as core;
pub use pp_graphs as graphs;
pub use pp_machines as machines;
pub use pp_presburger as presburger;
pub use pp_protocols as protocols;
pub use pp_random as random;
pub use pp_server as server;
