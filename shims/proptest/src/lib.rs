//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no network access, so the workspace ships the
//! slice of `proptest` it uses as a local path crate: the [`proptest!`]
//! macro, range/tuple/`prop_map`/`prop_oneof!`/`prop_recursive` strategies,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`prelude::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic.** Every case is generated from a seed derived from the
//!   test name and case index, so property tests are exactly replayable —
//!   there is no persistence file and no environment-dependent entropy.
//! * **No shrinking.** A failing case panics with the assertion message
//!   (which, in this workspace, always interpolates the inputs); it is
//!   reproduced exactly by re-running the test.
//! * Default case count is 64 (upstream: 256); `ProptestConfig::with_cases`
//!   overrides it as usual.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike upstream, strategies here are plain samplable objects: no
    /// value tree, no shrinking.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds values recursively: `recurse` receives a strategy for the
        /// structures built so far and returns a strategy for one-level
        /// larger structures; nesting is capped at `depth` levels.
        ///
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// upstream signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![base.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// Object-safe sampling facet used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (behind
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self { arms: self.arms.clone() }
        }
    }

    impl<T> Union<T> {
        /// Creates a union over the given non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! Default strategies per type, behind [`any`].

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The whole-domain strategy for `T`.
    #[derive(Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + Clone> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (upstream `any::<T>()`).
    pub fn any<T: Arbitrary + Clone>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod test_runner {
    //! Deterministic case generation and the reject signal.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case did not run to completion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and is skipped.
        Reject,
    }

    /// Per-test configuration (upstream `ProptestConfig` subset).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate and run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// FNV-1a hash of the test name: the base seed of its case stream.
    pub fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The deterministic RNG for one case of one test.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        StdRng::seed_from_u64(name_seed(name) ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// `use proptest::prelude::*;` — the common imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares deterministic property tests (upstream `proptest!` subset).
///
/// Supports an optional leading `#![proptest_config(expr)]`, multiple test
/// functions per invocation, and parameters of the form `name in strategy`
/// or `name: Type` (the latter drawing from [`arbitrary::Arbitrary`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::case_rng(stringify!($name), __case);
                $crate::__proptest_bind!(__rng; $($params)*);
                let __outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject,
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn defaults_run_and_ranges_stay_in_bounds(a in 0u64..5, b in -3i64..=3) {
            prop_assert!(a < 5);
            prop_assert!((-3..=3).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_and_assume_and_typed_params(a in 1u32..10, flag: bool) {
            prop_assume!(a != 3);
            prop_assert!(a != 3);
            let _ = flag;
        }

        #[test]
        fn second_fn_in_same_block(x in 0usize..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn map_oneof_recursive_compose() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => (-3..=3).contains(v),
                Tree::Node(a, b) => leaves_in_range(a) && leaves_in_range(b),
            }
        }
        let leaf = (-3i64..=3).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|t| Tree::Node(Box::new(t.clone()), Box::new(t))),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::test_runner::case_rng("compose", 0);
        let mut saw_node = false;
        for _ in 0..64 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 3);
            assert!(leaves_in_range(&t));
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion must produce nodes");
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..10)
            .map(|_| 0u64..100)
            .enumerate()
            .map(|(c, s)| s.sample(&mut crate::test_runner::case_rng("det", c as u32)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| (0u64..100).sample(&mut crate::test_runner::case_rng("det", c)))
            .collect();
        assert_eq!(a, b);
    }
}
