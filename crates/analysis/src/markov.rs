//! Markov-chain analysis of conjugating automata (§6.2, Theorem 11).
//!
//! Under uniform random pairing the configuration graph becomes a finite
//! Markov chain: from a configuration with counts `c`, the ordered pair of
//! states `(p, q)` is drawn with probability `c_p(c_q − [p = q]) / n(n−1)`.
//! The paper's Theorem 11 observes that a polynomial-time machine can build
//! this chain and read answers off its terminal components; this module
//! does exactly that, and additionally computes **expected convergence
//! times** — the expected number of interactions until the population
//! reaches an *output-committed* configuration (one from which the output
//! assignment can never change again), which is the quantity bounded by
//! Theorem 8.

use pp_core::Protocol;

use crate::linalg::{solve, Matrix};
use crate::reach::ConfigGraph;
use crate::scc::tarjan_slices;

/// Exact Markov-chain analysis of a protocol from one initial
/// configuration.
#[derive(Debug)]
pub struct MarkovAnalysis<P: Protocol> {
    graph: ConfigGraph<P>,
    /// Probability rows: `trans[i]` lists `(j, prob)` with probabilities
    /// summing to 1 (self-loops included).
    trans: Vec<Vec<(usize, f64)>>,
    /// Whether each node is output-committed.
    committed: Vec<bool>,
    /// Output class of each committed node (index into `classes`).
    class_of: Vec<Option<usize>>,
    /// Distinct committed output histograms.
    classes: Vec<Vec<(P::Output, u64)>>,
}

impl<P: Protocol> MarkovAnalysis<P> {
    /// Builds the chain from a symbol-count input.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 2 or exploration exceeds
    /// the default configuration bound.
    pub fn analyze<I>(protocol: P, inputs: I) -> Self
    where
        I: IntoIterator<Item = (P::Input, u64)>,
    {
        Self::from_graph(ConfigGraph::explore(protocol, inputs))
    }

    /// Builds the chain from a pre-explored configuration graph.
    pub fn from_graph(graph: ConfigGraph<P>) -> Self {
        let n_nodes = graph.len();

        // Transition probabilities. Every pair transition was computed
        // during exploration, so cached lookups cannot miss.
        let mut trans: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n_nodes);
        let mut index: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for i in 0..n_nodes {
            index.insert(graph.config(i).clone(), i);
        }
        for i in 0..n_nodes {
            let counts = graph.config(i).to_counts();
            let n = counts.population();
            let total = (n * (n - 1)) as f64;
            let support: Vec<_> = counts.support().collect();
            let mut row: Vec<(usize, f64)> = Vec::new();
            let add = |j: usize, p: f64, row: &mut Vec<(usize, f64)>| {
                match row.iter_mut().find(|(jj, _)| *jj == j) {
                    Some((_, acc)) => *acc += p,
                    None => row.push((j, p)),
                }
            };
            for &(p, cp) in &support {
                for &(q, cq) in &support {
                    let weight = if p == q {
                        cp * (cp - 1)
                    } else {
                        cp * cq
                    };
                    if weight == 0 {
                        continue;
                    }
                    let prob = weight as f64 / total;
                    let (p2, q2) = graph
                        .runtime()
                        .cached_transition(p, q)
                        .expect("transition memoized during exploration");
                    if (p2, q2) == (p, q) {
                        add(i, prob, &mut row);
                        continue;
                    }
                    let mut next = counts.clone();
                    next.ensure_len(
                        (p2.index().max(q2.index()) + 1).max(next.as_slice().len()),
                    );
                    next.apply((p, q), (p2, q2));
                    let j = index[&next.to_canonical()];
                    add(j, prob, &mut row);
                }
            }
            trans.push(row);
        }

        // Output-committed nodes: the whole forward cone shares one output
        // histogram. Computed per SCC in downstream-first order.
        let succ: Vec<Vec<usize>> = (0..n_nodes).map(|i| graph.successors(i).to_vec()).collect();
        let scc = tarjan_slices(&succ);
        let ncomp = scc.len();
        let mut comp_hist: Vec<Option<Vec<(pp_core::registry::OutputId, u64)>>> =
            vec![None; ncomp];
        let mut comp_committed = vec![false; ncomp];
        // Tarjan assigns component indices in reverse topological order:
        // every edge goes from a higher component index to a lower one, so
        // increasing index order is downstream-first.
        for c in 0..ncomp {
            let members = &scc.members[c];
            let h0 = graph.output_histogram(members[0]);
            let uniform = members.iter().all(|&v| graph.output_histogram(v) == h0);
            let mut ok = uniform;
            if ok {
                'outer: for &v in members {
                    for &w in &succ[v] {
                        let cw = scc.component[w];
                        if cw == c {
                            continue;
                        }
                        if !comp_committed[cw]
                            || comp_hist[cw].as_ref() != Some(&h0)
                        {
                            ok = false;
                            break 'outer;
                        }
                    }
                }
            }
            comp_committed[c] = ok;
            comp_hist[c] = Some(h0);
        }

        let committed: Vec<bool> = (0..n_nodes)
            .map(|v| comp_committed[scc.component[v]])
            .collect();

        // Output classes over committed nodes.
        let mut classes: Vec<Vec<(P::Output, u64)>> = Vec::new();
        let mut class_of: Vec<Option<usize>> = vec![None; n_nodes];
        for v in 0..n_nodes {
            if !committed[v] {
                continue;
            }
            let hist: Vec<(P::Output, u64)> = graph
                .output_histogram(v)
                .into_iter()
                .map(|(o, k)| (graph.runtime().output_value(o).clone(), k))
                .collect();
            let c = match classes.iter().position(|h| *h == hist) {
                Some(c) => c,
                None => {
                    classes.push(hist);
                    classes.len() - 1
                }
            };
            class_of[v] = Some(c);
        }

        Self { graph, trans, committed, class_of, classes }
    }

    /// The underlying configuration graph.
    pub fn graph(&self) -> &ConfigGraph<P> {
        &self.graph
    }

    /// Probability row of node `i` (sums to 1, self-loops included).
    pub fn transition_row(&self, i: usize) -> &[(usize, f64)] {
        &self.trans[i]
    }

    /// Whether node `i` is output-committed: no reachable configuration
    /// (including itself) has a different output assignment.
    pub fn is_committed(&self, i: usize) -> bool {
        self.committed[i]
    }

    /// The distinct committed output histograms.
    pub fn classes(&self) -> &[Vec<(P::Output, u64)>] {
        &self.classes
    }

    /// Expected number of interactions, starting from the initial
    /// configuration, until the population is output-committed.
    ///
    /// Returns `None` if commitment is not almost-sure (some fair region
    /// never commits — the protocol is not always-convergent from this
    /// input).
    pub fn expected_steps_to_commit(&self) -> Option<f64> {
        if self.committed[0] {
            return Some(0.0);
        }
        // Almost-sure commitment ⇔ every bottom (final) SCC is committed;
        // equivalently, from every transient node some committed node is
        // reachable. Check via the transient-only system being solvable:
        // first verify reachability explicitly.
        let transient: Vec<usize> =
            (0..self.trans.len()).filter(|&v| !self.committed[v]).collect();
        if !self.commitment_almost_sure(&transient) {
            return None;
        }
        let pos: std::collections::HashMap<usize, usize> =
            transient.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        let m = transient.len();
        let mut a = Matrix::identity(m);
        let mut b = Matrix::zeros(m, 1);
        for (k, &v) in transient.iter().enumerate() {
            b[(k, 0)] = 1.0;
            for &(j, p) in &self.trans[v] {
                if let Some(&kj) = pos.get(&j) {
                    a[(k, kj)] -= p;
                }
            }
        }
        let x = solve(&a, &b).ok()?;
        Some(x[(pos[&0], 0)])
    }

    /// Probability, from the initial configuration, of committing to each
    /// output class, aligned with [`classes`](Self::classes).
    ///
    /// For an always-convergent protocol the probabilities sum to 1.
    pub fn commit_probabilities(&self) -> Vec<f64> {
        let ncls = self.classes.len();
        if ncls == 0 {
            return Vec::new();
        }
        if let Some(c) = self.class_of[0] {
            let mut out = vec![0.0; ncls];
            out[c] = 1.0;
            return out;
        }
        let transient: Vec<usize> =
            (0..self.trans.len()).filter(|&v| !self.committed[v]).collect();
        let pos: std::collections::HashMap<usize, usize> =
            transient.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        let m = transient.len();
        let mut a = Matrix::identity(m);
        let mut b = Matrix::zeros(m, ncls);
        for (k, &v) in transient.iter().enumerate() {
            for &(j, p) in &self.trans[v] {
                match pos.get(&j) {
                    Some(&kj) => a[(k, kj)] -= p,
                    None => {
                        let c = self.class_of[j].expect("non-transient node has a class");
                        b[(k, c)] += p;
                    }
                }
            }
        }
        match solve(&a, &b) {
            Ok(x) => (0..ncls).map(|c| x[(pos[&0], c)]).collect(),
            Err(_) => vec![f64::NAN; ncls],
        }
    }

    fn commitment_almost_sure(&self, transient: &[usize]) -> bool {
        // Backward reachability from committed nodes over transient ones.
        let n = self.trans.len();
        let mut can_reach = self.committed.clone();
        // Iterate to fixpoint (graphs are small).
        let mut changed = true;
        while changed {
            changed = false;
            for &v in transient {
                if can_reach[v] {
                    continue;
                }
                if self.trans[v].iter().any(|&(j, p)| p > 0.0 && can_reach[j]) {
                    can_reach[v] = true;
                    changed = true;
                }
            }
        }
        (0..n).all(|v| can_reach[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, FnProtocol, Simulation};

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> + Clone {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    #[test]
    fn epidemic_rows_are_stochastic() {
        let m = MarkovAnalysis::analyze(epidemic(), [(true, 1), (false, 3)]);
        for i in 0..m.graph().len() {
            let s: f64 = m.transition_row(i).iter().map(|&(_, p)| p).sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn epidemic_expected_time_matches_closed_form() {
        // With k infected of n, P(next infects) = 2k(n−k)/(n(n−1)):
        // an ordered pair spreads iff it contains one infected and one
        // healthy agent (either role). E[T] = Σ_{k=1}^{n−1} n(n−1)/(2k(n−k)).
        let n = 6u64;
        let m = MarkovAnalysis::analyze(epidemic(), [(true, 1), (false, n - 1)]);
        let expect: f64 = (1..n)
            .map(|k| (n * (n - 1)) as f64 / (2 * k * (n - k)) as f64)
            .sum();
        let got = m.expected_steps_to_commit().unwrap();
        assert!((got - expect).abs() < 1e-9, "got {got}, want {expect}");
    }

    #[test]
    fn expected_time_agrees_with_monte_carlo() {
        let n = 8u64;
        let m = MarkovAnalysis::analyze(epidemic(), [(true, 1), (false, n - 1)]);
        let exact = m.expected_steps_to_commit().unwrap();
        let trials: u64 = if cfg!(debug_assertions) { 600 } else { 3000 };
        let mut total = 0u64;
        for seed in 0..trials {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            total += sim.run_until_consensus(&true, 1_000_000, &mut rng).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let ratio = mean / exact;
        assert!((0.9..1.1).contains(&ratio), "MC {mean:.1} vs exact {exact:.1}");
    }

    #[test]
    fn committed_detection() {
        let m = MarkovAnalysis::analyze(epidemic(), [(true, 1), (false, 2)]);
        // Only the all-infected configuration is committed (any healthy
        // agent may still flip, changing the histogram).
        let committed: Vec<usize> =
            (0..m.graph().len()).filter(|&i| m.is_committed(i)).collect();
        assert_eq!(committed.len(), 1);
        assert_eq!(m.graph().config(committed[0]).pairs().len(), 1);
    }

    #[test]
    fn oscillator_never_commits() {
        let osc = FnProtocol::new(
            |&(): &()| false,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (!p, !q),
        );
        let m = MarkovAnalysis::analyze(osc, [((), 3)]);
        assert_eq!(m.expected_steps_to_commit(), None);
    }

    #[test]
    fn coin_commit_probabilities_sum_to_one() {
        // The schism protocol from verify.rs: outcome depends on schedule.
        let coin = FnProtocol::new(
            |&(): &()| 0u8,
            |&q: &u8| q,
            |&p: &u8, &q: &u8| match (p, q) {
                (0, 0) => (1, 2),
                (1, 0) => (1, 1),
                (2, 0) => (2, 2),
                (0, 1) => (1, 1),
                (0, 2) => (2, 2),
                other => other,
            },
        );
        let m = MarkovAnalysis::analyze(coin, [((), 4)]);
        let probs = m.commit_probabilities();
        assert!(m.classes().len() >= 2);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
        assert!(probs.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn already_committed_initial_config() {
        let m = MarkovAnalysis::analyze(epidemic(), [(true, 4)]);
        assert_eq!(m.expected_steps_to_commit(), Some(0.0));
        let probs = m.commit_probabilities();
        assert_eq!(probs, vec![1.0]);
    }
}
