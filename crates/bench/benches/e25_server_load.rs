//! E25 — protocol-as-a-service load: `pp-server` under concurrent clients.
//!
//! Not a paper claim: this table characterizes PR 10's HTTP layer. The
//! server's contract is that concurrency is *invisible in the bytes* —
//! worker threads, connection interleaving, and cache state may only move
//! timing headers, never report bodies. Three sections:
//!
//! * **Load** (`load` rows): `C` client threads hammer one server with a
//!   scripted mix of named-protocol ensemble runs and formula
//!   compile-and-run requests (the same two seeded specs over and over).
//!   Each row records requests/sec, p50/p99 round-trip latency, and an
//!   `identical` cell that is 1 only if *every* response body matched the
//!   single-connection reference byte-for-byte. The bench hard-asserts
//!   `identical == 1` and that the run held at least 4 concurrent
//!   connections.
//! * **Compile cache** (`cache` row): against a fresh server, the first
//!   formula request must report `X-PP-Cache: miss` and every replay
//!   `hit`; the row records the server-side `X-PP-Elapsed-Us` for both
//!   and the hit-path speedup (cold ÷ mean warm). The speedup is a
//!   hardware-dependent measurement, not an assert — the headers are the
//!   hard contract.
//! * **Health** (`health` row): after the storm, `GET /healthz` from
//!   every client thread — the workers must all still answer.
//!
//! `p50_us`/`p99_us`/`rps`/`speedup` are wall-clock cells for the
//! `ppbench-compare` gate to watch; `identical` is the machine-checked
//! determinism guarantee. Results land in `BENCH_e25_server_load.json`.

use std::time::Instant;

use pp_bench::{fmt, print_header, BenchReport};
use pp_core::trace::RunManifest;
use pp_server::client;
use pp_server::{serve, Server, ServerConfig};

/// A seeded named-protocol ensemble: majority on n = 10, 4 trials.
const NAMED_SPEC: &str = r#"{
    "protocol": {"name": "majority"},
    "population": {"1": 6, "0": 4},
    "seed": 7,
    "engine": "batched",
    "trials": 4,
    "horizon": 30000
}"#;

/// A seeded formula run: compiled through the cache, then simulated.
const FORMULA_SPEC: &str = r#"{
    "protocol": {"formula": "a > b"},
    "population": {"a": 6, "b": 4},
    "seed": 42,
    "engine": "batched",
    "trials": 4,
    "horizon": 30000
}"#;

/// The cache-section spec: a compile-heavy formula (conjunction of a
/// remainder atom and a weighted threshold, so Cooper QE builds a real
/// product) over a run light enough that the compile dominates the cold
/// request. This is what makes the hit-path speedup visible.
const CACHE_SPEC: &str = r#"{
    "protocol": {"formula": "a = 2 mod 7 /\\ b = 3 mod 5 /\\ a + 2*b > 15"},
    "population": {"a": 9, "b": 4},
    "seed": 5,
    "trials": 1,
    "horizon": 2000
}"#;

struct Params {
    clients: usize,
    requests_per_client: usize,
    warm_hits: usize,
}

impl Params {
    fn get() -> Self {
        if pp_bench::smoke() {
            Self { clients: 4, requests_per_client: 6, warm_hits: 4 }
        } else {
            Self { clients: 8, requests_per_client: 32, warm_hits: 16 }
        }
    }
}

fn boot(workers: usize) -> Server {
    serve("127.0.0.1:0", ServerConfig { threads: workers, ..ServerConfig::default() })
        .expect("bind loopback")
}

fn main() {
    let p = Params::get();
    let mut report = BenchReport::new("e25_server_load");
    report
        .set_meta("clients", p.clients as u64)
        .set_meta("requests_per_client", p.requests_per_client as u64)
        .set_manifest(
            RunManifest::default()
                .with_protocol("majority + compiled a > b")
                .with_population(10)
                .with_master_seed(7)
                .with_threads(p.clients as u64)
                .with_detected_git_rev(),
        );

    println!(
        "\nE25: pp-server load — {} clients x {} requests, one server, 4 workers",
        p.clients, p.requests_per_client
    );
    println!("identical=1 means every concurrent response matched the");
    println!("single-connection reference body byte-for-byte\n");
    print_header(
        &["case", "clients", "reqs", "wall_s", "rps", "p50_us", "p99_us", "identical"],
        &[8, 8, 6, 9, 9, 9, 9, 10],
    );

    // ---- Load section -----------------------------------------------------
    let server = boot(4);
    let addr = server.addr();

    // Reference bodies over a single connection, before any concurrency.
    let ref_named = client::post(addr, "/v1/run", NAMED_SPEC).expect("reference named run");
    let ref_formula =
        client::post(addr, "/v1/run", FORMULA_SPEC).expect("reference formula run");
    assert_eq!(ref_named.status, 200, "reference named run: {}", ref_named.text());
    assert_eq!(ref_formula.status, 200, "reference formula run: {}", ref_formula.text());

    let t0 = Instant::now();
    let handles: Vec<_> = (0..p.clients)
        .map(|c| {
            let named = ref_named.body.clone();
            let formula = ref_formula.body.clone();
            let reqs = p.requests_per_client;
            std::thread::spawn(move || {
                let mut lat_us = Vec::with_capacity(reqs);
                let mut identical = true;
                for i in 0..reqs {
                    // Alternate the mix; stagger the phase per client.
                    let (spec, want) = if (i + c) % 2 == 0 {
                        (NAMED_SPEC, &named)
                    } else {
                        (FORMULA_SPEC, &formula)
                    };
                    let t = Instant::now();
                    let resp = client::post(addr, "/v1/run", spec).expect("request");
                    lat_us.push(t.elapsed().as_micros() as u64);
                    identical &= resp.status == 200 && resp.body == *want;
                }
                (lat_us, identical)
            })
        })
        .collect();
    let mut lat_us: Vec<u64> = Vec::new();
    let mut identical = true;
    for h in handles {
        let (l, ok) = h.join().expect("client thread");
        lat_us.extend(l);
        identical &= ok;
    }
    let wall = t0.elapsed().as_secs_f64();
    assert!(identical, "a concurrent response diverged from the reference bytes");
    assert!(p.clients >= 4, "load section must hold >= 4 concurrent connections");

    lat_us.sort_unstable();
    let total = lat_us.len();
    let p50 = lat_us[total / 2] as f64;
    let p99 = lat_us[(total - 1).min(total * 99 / 100)] as f64;
    let rps = total as f64 / wall;
    println!(
        "{:>8} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "load",
        p.clients,
        total,
        fmt(wall),
        fmt(rps),
        fmt(p50),
        fmt(p99),
        u64::from(identical),
    );
    report.push_row([
        ("case", pp_bench::Value::from("load")),
        ("clients", (p.clients as u64).into()),
        ("requests", (total as u64).into()),
        ("wall_s", wall.into()),
        ("rps", rps.into()),
        ("p50_us", p50.into()),
        ("p99_us", p99.into()),
        ("identical", identical.into()),
    ]);

    // ---- Compile-cache section --------------------------------------------
    // A fresh server so the formula is genuinely cold.
    let fresh = boot(2);
    let cold = client::post(fresh.addr(), "/v1/run", CACHE_SPEC).expect("cold request");
    assert_eq!(cold.status, 200, "cold formula run: {}", cold.text());
    assert_eq!(cold.header("x-pp-cache"), Some("miss"), "first compile must miss");
    let cold_us = elapsed_us(&cold);
    let mut warm_us = Vec::with_capacity(p.warm_hits);
    for _ in 0..p.warm_hits {
        let warm = client::post(fresh.addr(), "/v1/run", CACHE_SPEC).expect("warm request");
        assert_eq!(warm.header("x-pp-cache"), Some("hit"), "replay must hit the cache");
        assert_eq!(warm.body, cold.body, "cache state leaked into the report bytes");
        warm_us.push(elapsed_us(&warm));
    }
    let warm_mean = warm_us.iter().sum::<f64>() / warm_us.len() as f64;
    let speedup = cold_us / warm_mean;
    println!(
        "{:>8} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "cache",
        1,
        p.warm_hits + 1,
        "-",
        "-",
        fmt(warm_mean),
        fmt(cold_us),
        1,
    );
    report.push_row([
        ("case", pp_bench::Value::from("cache")),
        ("cold_us", cold_us.into()),
        ("warm_mean_us", warm_mean.into()),
        ("speedup", speedup.into()),
        ("warm_hits", (p.warm_hits as u64).into()),
    ]);
    fresh.shutdown();

    // ---- Health section ---------------------------------------------------
    let mut alive = 0u64;
    for _ in 0..p.clients {
        let h = client::get(addr, "/healthz").expect("healthz");
        alive += u64::from(h.status == 200);
    }
    assert_eq!(alive, p.clients as u64, "a worker died under load");
    report.push_row([
        ("case", pp_bench::Value::from("health")),
        ("probes", (p.clients as u64).into()),
        ("alive", alive.into()),
    ]);
    server.shutdown();

    println!("\nreading: the load row's identical cell is the service contract —");
    println!("thread count and cache state move headers, never bytes; the cache");
    println!("row's speedup is what the keyed CompiledCache buys a warm formula\n");
    report.write();
}

/// The server-side `X-PP-Elapsed-Us` header as a float (µs).
fn elapsed_us(resp: &client::Response) -> f64 {
    resp.header("x-pp-elapsed-us")
        .and_then(|v| v.parse::<f64>().ok())
        .expect("X-PP-Elapsed-Us header")
}
