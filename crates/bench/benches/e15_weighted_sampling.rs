//! E15 — §8's weighted-sampling conjecture, probed empirically.
//!
//! "One idea is weighted sampling, in which population members are sampled
//! according to their weights … We conjecture that with reasonable
//! restrictions on the weights, weighted sampling yields the same power as
//! uniform sampling."
//!
//! We run majority under uniform weights and under increasingly skewed
//! weight profiles. Stable computation must (and does) produce the same
//! verdict; only convergence *time* shifts, degrading smoothly with skew —
//! evidence for the conjecture in the measured regime.

use pp_bench::{fmt, mean, print_header};
use pp_core::scheduler::WeightedPairScheduler;
use pp_core::{seeded_rng, AgentSimulation};
use pp_protocols::majority;

fn main() {
    println!("\nE15: §8 weighted sampling — majority (11 ones vs 9 zeros, n = 20)\n");
    print_header(
        &["weight profile", "runs", "correct", "E[stabilize]"],
        &[24, 5, 8, 13],
    );

    let n = 20usize;
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 20 < 11)).collect();
    let trials = if pp_bench::smoke() { 5u64 } else { 40u64 };

    let profiles: Vec<(&str, Vec<f64>)> = vec![
        ("uniform", vec![1.0; n]),
        ("mild skew (1..2)", (0..n).map(|i| 1.0 + i as f64 / n as f64).collect()),
        ("linear skew (1..n)", (0..n).map(|i| (i + 1) as f64).collect()),
        ("heavy tail (2^-i)", (0..n).map(|i| 2f64.powi(-(i as i32 % 12))).collect()),
    ];

    for (name, weights) in profiles {
        let mut times = Vec::new();
        let mut correct = 0u64;
        for seed in 0..trials {
            let mut sim = AgentSimulation::from_inputs(
                majority(),
                &inputs,
                WeightedPairScheduler::new(weights.clone()),
            );
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, 2_000_000, &mut rng);
            if let Some(t) = rep.stabilized_at {
                correct += 1;
                times.push(t as f64);
            }
        }
        println!(
            "{:>24} {:>5} {:>8} {:>13}",
            name,
            trials,
            format!("{correct}/{trials}"),
            fmt(mean(&times)),
        );
    }

    println!("\npaper conjecture: same verdicts under every profile (power unchanged);");
    println!("only the convergence time degrades with skew\n");
}
