//! Fault injection at a glance: a one-way epidemic on the per-agent
//! engine, surviving crashes, message loss and churn at once.
//!
//! Run with `cargo run -p pp-core --release --example fault_demo`.

use pp_core::prelude::*;

/// One-way infection: meeting an infected agent infects you.
struct Epidemic;

impl Protocol for Epidemic {
    type State = bool;
    type Input = bool;
    type Output = bool;

    fn input(&self, &x: &bool) -> bool {
        x
    }
    fn output(&self, &q: &bool) -> bool {
        q
    }
    fn delta(&self, &p: &bool, &q: &bool) -> (bool, bool) {
        (p || q, p || q)
    }
}

fn main() {
    let n = 64;
    let inputs: Vec<bool> = (0..n).map(|i| i == 0).collect();
    let mut sim =
        AgentSimulation::from_inputs(Epidemic, &inputs, UniformPairScheduler::new(n));

    // 8 sensors die at slot 2 000; every 5 000 slots two agents are swapped
    // for fresh uninfected ones; 20% of encounters lose their message.
    let mut plan = (
        CrashFaults::at(2_000, 8),
        (Churn::new(5_000, 2, false), InteractionDrop::new(0.2)),
    );

    let mut rng = seeded_rng(1);
    let report = sim.run_with_faults(&mut plan, &true, 40_000, &mut rng);

    println!("live agents after crashes: {} of {n}", sim.live_population());
    println!(
        "faults injected: {}, slots dropped: {}, starved slots: {}",
        report.faults_injected, report.dropped, report.starved
    );
    for (i, seg) in report.segments.iter().enumerate() {
        println!(
            "segment {i}: injected at {:>6}, recovered at {:>12}, residual wrong {}",
            seg.injected_at,
            seg.recovered_at.map_or_else(|| "never".into(), |t| t.to_string()),
            seg.residual_error
        );
    }
    println!("final report recovered: {}", report.recovered());
    println!("consensus output: {:?}", sim.consensus_output());
}
