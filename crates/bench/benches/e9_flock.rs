//! E9 — §1's flock-of-birds predicates at scale.
//!
//! Count-to-5 ("at least five hot birds") and the ≥5% relative threshold,
//! swept over flock sizes, measuring stabilization interactions for both
//! positive and negative instances.

use pp_bench::{fmt, mean, print_header};
use pp_core::{seeded_rng, Simulation};
use pp_protocols::{CountThreshold, PercentThreshold};

fn main() {
    println!("\nE9: the flock of birds (§1) — count-to-5 and ≥5%\n");
    print_header(
        &["predicate", "n", "hot", "truth", "runs", "E[stabilize]"],
        &[12, 6, 5, 6, 5, 14],
    );

    let n_list: &[u64] = if pp_bench::smoke() { &[40] } else { &[40, 80, 160, 320] };
    for &n in n_list {
        for hot in [4u64, 5, n / 20, n / 20 + 1] {
            let expected = hot >= 5;
            let trials =
                if pp_bench::smoke() { 5 } else { (400_000 / (n * n)).clamp(10, 100) };
            let mut times = Vec::new();
            for seed in 0..trials {
                let mut sim = Simulation::from_counts(
                    CountThreshold::new(5),
                    [(true, hot), (false, n - hot)],
                );
                let mut rng = seeded_rng(seed + n * 7 + hot);
                let rep = sim.measure_stabilization(&expected, 60 * n * n, &mut rng);
                times.push(rep.stabilized_at.expect("stabilizes") as f64);
            }
            println!(
                "{:>12} {:>6} {:>5} {:>6} {:>5} {:>14}",
                "count-to-5",
                n,
                hot,
                expected,
                trials,
                fmt(mean(&times)),
            );
        }
    }

    println!();
    for &n in n_list {
        // Just below and at the 5% boundary.
        for hot in [n / 20, n / 20 + 1] {
            let p = PercentThreshold::new(1, 20).unwrap();
            let expected = p.eval(n - hot, hot);
            let trials =
                if pp_bench::smoke() { 5 } else { (400_000 / (n * n)).clamp(10, 100) };
            let mut times = Vec::new();
            for seed in 0..trials {
                let mut sim = Simulation::from_counts(
                    PercentThreshold::new(1, 20).unwrap(),
                    [(true, hot), (false, n - hot)],
                );
                let mut rng = seeded_rng(seed * 3 + n + hot);
                let rep = sim.measure_stabilization(&expected, 60 * n * n, &mut rng);
                times.push(rep.stabilized_at.expect("stabilizes") as f64);
            }
            println!(
                "{:>12} {:>6} {:>5} {:>6} {:>5} {:>14}",
                ">=5 percent",
                n,
                hot,
                expected,
                trials,
                fmt(mean(&times)),
            );
        }
    }

    println!("\npaper shape: both predicates stabilize on every instance; time grows ~n² log n\n");
}
