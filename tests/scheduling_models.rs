//! Integration tests for the §8 scheduling variants: weighted sampling and
//! synchronous parallel rounds must preserve stable verdicts.

use population_protocols::core::prelude::*;
use population_protocols::core::scheduler::WeightedPairScheduler;
use population_protocols::protocols::{majority, parity, CountThreshold};

#[test]
fn weighted_sampling_preserves_verdicts() {
    let n = 14usize;
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i < 8)).collect(); // 8 ones
    for profile in [
        vec![1.0; n],
        (0..n).map(|i| 1.0 + i as f64).collect::<Vec<_>>(),
        (0..n).map(|i| 2f64.powi(-((i % 8) as i32))).collect::<Vec<_>>(),
    ] {
        let mut sim = AgentSimulation::from_inputs(
            majority(),
            &inputs,
            WeightedPairScheduler::new(profile.clone()),
        );
        let mut rng = seeded_rng(4);
        let rep = sim.measure_stabilization(&true, 3_000_000, &mut rng);
        assert!(rep.converged(), "majority under weights {profile:?}");
    }
}

#[test]
fn parallel_rounds_preserve_verdicts() {
    let mut rng = seeded_rng(9);
    // Count-to-5, positive and negative.
    let mut sim = Simulation::from_counts(CountThreshold::new(5), [(true, 6), (false, 30)]);
    let rounds = sim.measure_stabilization_rounds(&true, 4000, &mut rng);
    assert!(rounds.is_some(), "count-to-5 positive under parallel rounds");

    let mut sim = Simulation::from_counts(CountThreshold::new(5), [(true, 4), (false, 32)]);
    let rounds = sim.measure_stabilization_rounds(&false, 4000, &mut rng);
    assert_eq!(rounds, Some(0), "negative case never alerts");

    // Parity under parallel rounds.
    let mut sim = Simulation::from_counts(parity(), [(0usize, 9), (1usize, 7)]);
    let rounds = sim.measure_stabilization_rounds(&true, 20_000, &mut rng);
    assert!(rounds.is_some(), "odd parity under parallel rounds");
}

#[test]
fn parallel_rounds_agree_with_sequential_on_quotient() {
    use population_protocols::core::convention::integer_output;
    use population_protocols::protocols::QuotientProtocol;

    let m = 13u64;
    let mut sim = Simulation::from_counts(QuotientProtocol::new(3), [(true, m), (false, 7)]);
    let mut rng = seeded_rng(2);
    for _ in 0..4000 {
        sim.parallel_round(&mut rng);
    }
    assert_eq!(integer_output(&sim.output_histogram()), (m / 3) as i64);
}
