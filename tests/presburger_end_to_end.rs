//! End-to-end integration: Presburger text → Cooper QE → compiled protocol
//! → exact verification (all inputs, small n) → randomized simulation.
//!
//! This is the full Theorem 5 / Corollary 3 pipeline exercised across
//! crate boundaries.

use population_protocols::analysis::verify::verify_predicate;
use population_protocols::core::prelude::*;
use population_protocols::presburger::compile::{compile, compile_parsed, integer_input_formula};
use population_protocols::presburger::{parse, SemilinearSet};

/// Formulas from or close to the paper, each verified exhaustively for all
/// symbol counts with 2 ≤ n ≤ 5 and simulated at a larger instance.
const FORMULAS: &[&str] = &[
    "ones >= 5",                              // count-to-five (§1)
    "20 * hot >= hot + normal",               // ≥5% of the flock (§1, §4.2)
    "b < a",                                  // majority
    "ones = 1 mod 2",                         // parity
    "x - 2 * y = 0 mod 3",                    // §4.3 example
    "exists q. x = 2 * q",                    // evenness via QE
    "a + b < 4 \\/ a = b",                    // Boolean combination
    "!(a < 2) /\\ a = 1 mod 3",               // negation + congruence
];

/// Calls `f` on every count vector of length `k` with entries in `0..=max`.
fn for_each_count_vector(k: usize, max: u64, mut f: impl FnMut(&[u64])) {
    let mut counts = vec![0u64; k];
    loop {
        f(&counts);
        let mut i = 0;
        while i < k {
            counts[i] += 1;
            if counts[i] <= max {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
        if i == k {
            return;
        }
    }
}

#[test]
fn formulas_verify_exhaustively_for_small_populations() {
    for src in FORMULAS {
        let parsed = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let protocol = compile_parsed(&parsed).unwrap();
        let k = parsed.vars.len();
        for_each_count_vector(k, 5, |counts| {
            let n: u64 = counts.iter().sum();
            if !(2..=5).contains(&n) {
                return;
            }
            let expected = protocol.eval(counts);
            let report = verify_predicate(
                protocol.clone(),
                counts.iter().enumerate().map(|(i, &c)| (i, c)),
                expected,
            );
            assert!(
                report.holds(),
                "{src} at {counts:?}: expected {expected}, verdict {:?}",
                report.verdict
            );
        });
    }
}

#[test]
fn formulas_simulate_correctly_at_larger_sizes() {
    let mut rng = seeded_rng(1234);
    for (fi, src) in FORMULAS.iter().enumerate() {
        let parsed = parse(src).unwrap();
        let protocol = compile_parsed(&parsed).unwrap();
        let k = parsed.vars.len();
        // Two pseudo-random instances per formula.
        for inst in 0..2u64 {
            let counts: Vec<u64> =
                (0..k).map(|i| (fi as u64 * 7 + inst * 13 + i as u64 * 5) % 12).collect();
            if counts.iter().sum::<u64>() < 2 {
                continue;
            }
            let expected = protocol.eval(&counts);
            let mut sim = Simulation::from_counts(
                protocol.clone(),
                counts.iter().enumerate().map(|(i, &c)| (i, c)),
            );
            let report = sim.measure_stabilization(&expected, 600_000, &mut rng);
            assert!(
                report.converged(),
                "{src} at {counts:?} did not stabilize to {expected}"
            );
        }
    }
}

#[test]
fn semilinear_set_to_protocol_corollary4() {
    // L = {(x, y) : (x, y) = (1, 0) + k(2, 1) + l(0, 3)} — a linear set.
    // Corollary 4 route: semilinear → formula → (QE) → protocol.
    let lin = population_protocols::presburger::LinearSet::new(
        vec![1, 0],
        vec![vec![2, 1], vec![0, 3]],
    );
    let sls = SemilinearSet::new(vec![lin.clone()]);
    let formula = sls.to_formula();
    let protocol = compile(&formula, 2).unwrap();
    for x in 0u64..7 {
        for y in 0u64..7 {
            assert_eq!(
                protocol.eval(&[x, y]),
                sls.contains(&[x, y]),
                "membership mismatch at ({x},{y})"
            );
        }
    }
    // And exhaustively verify stability for all n ≤ 5 inputs.
    for x in 0u64..=5 {
        for y in 0u64..=(5 - x) {
            if x + y < 2 {
                continue;
            }
            let expected = sls.contains(&[x, y]);
            let report =
                verify_predicate(protocol.clone(), [(0usize, x), (1usize, y)], expected);
            assert!(report.holds(), "({x},{y}): {:?}", report.verdict);
        }
    }
}

#[test]
fn integer_input_convention_corollary3() {
    // Φ(y) = y ≡ 1 (mod 3) with alphabet {+1, −1, 0} (Corollary 3).
    let phi = parse("y = 1 mod 3").unwrap().formula;
    let alphabet = vec![vec![1i64], vec![-1], vec![0]];
    let phi2 = integer_input_formula(&phi, &alphabet);
    let protocol = compile(&phi2, 3).unwrap();
    for plus in 0u64..6 {
        for minus in 0u64..6 {
            for zero in 0u64..3 {
                let y = plus as i64 - minus as i64;
                let expected = y.rem_euclid(3) == 1;
                assert_eq!(protocol.eval(&[plus, minus, zero]), expected);
            }
        }
    }
    // Exact verification at small sizes.
    let report = verify_predicate(protocol.clone(), [(0usize, 3), (1usize, 2), (2usize, 0)], true);
    assert!(report.holds(), "{:?}", report.verdict); // y = 1 ≡ 1 ✓
    let report = verify_predicate(protocol, [(0usize, 2), (1usize, 2), (2usize, 1)], false);
    assert!(report.holds(), "{:?}", report.verdict); // y = 0
}
