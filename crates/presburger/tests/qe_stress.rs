//! Stress tests for Cooper quantifier elimination: known Presburger facts
//! whose proofs require non-trivial quantifier reasoning.

use pp_presburger::{eliminate_quantifiers, parse, Formula};

fn decide_sentence(src: &str) -> bool {
    let f = parse(src).unwrap().formula;
    assert!(f.free_vars().is_empty(), "{src} must be a sentence");
    match eliminate_quantifiers(&f) {
        Formula::Const(b) => b,
        other => other.eval_qf(&[]),
    }
}

#[test]
fn chicken_mcnugget_for_3_and_5() {
    // Every integer ≥ 8 is 3a + 5b with a, b ≥ 0; 7 is not.
    assert!(decide_sentence(
        "forall x. x >= 8 -> (exists a b. a >= 0 /\\ b >= 0 /\\ x = 3 * a + 5 * b)"
    ));
    assert!(!decide_sentence(
        "exists a b. a >= 0 /\\ b >= 0 /\\ 7 = 3 * a + 5 * b"
    ));
}

#[test]
fn division_algorithm() {
    // ∀x ∃q r. x = 3q + r ∧ 0 ≤ r < 3.
    assert!(decide_sentence(
        "forall x. exists q r. x = 3 * q + r /\\ r >= 0 /\\ r < 3"
    ));
    // …and the remainder is unique: no x has two distinct remainders.
    assert!(decide_sentence(
        "forall x. !(exists q1 r1 q2 r2. \
            x = 3 * q1 + r1 /\\ r1 >= 0 /\\ r1 < 3 /\\ \
            x = 3 * q2 + r2 /\\ r2 >= 0 /\\ r2 < 3 /\\ r1 != r2)"
    ));
}

#[test]
fn density_and_discreteness() {
    // The integers are discrete: nothing strictly between 0 and 1.
    assert!(!decide_sentence("exists x. 0 < x /\\ x < 1"));
    // But between any x and x+2 there is something.
    assert!(decide_sentence("forall x. exists y. x < y /\\ y < x + 2"));
}

#[test]
fn parity_dichotomy_and_exclusivity() {
    assert!(decide_sentence("forall x. (2 | x) \\/ (2 | x + 1)"));
    assert!(!decide_sentence("exists x. (2 | x) /\\ (2 | x + 1)"));
}

#[test]
fn crt_for_coprime_moduli() {
    // Chinese remainder: residues mod 2 and mod 3 can be chosen freely.
    assert!(decide_sentence(
        "forall a b. exists x. x = a mod 2 /\\ x = b mod 3"
    ));
    // But not for non-coprime moduli: x ≡ 0 (mod 2) ∧ x ≡ 1 (mod 4) is
    // unsatisfiable.
    assert!(!decide_sentence("exists x. x = 0 mod 2 /\\ x = 1 mod 4"));
}

#[test]
fn three_quantifier_alternations() {
    // ∀x ∃y ∀z. z > y → z > x  (pick y = x).
    assert!(decide_sentence("forall x. exists y. forall z. z > y -> z > x"));
    // ∃x ∀y ∃z. y < z ∧ z < y + 2 ∧ x < z — false? z = y + 1 works for any
    // y > x − 1... for fixed x choose y ≤ x − 1: then z = y + 1 ≤ x fails
    // x < z. Need z > x and y < z < y + 2 → z = y + 1 > x → y ≥ x; but y
    // is universal, so false.
    assert!(!decide_sentence(
        "exists x. forall y. exists z. y < z /\\ z < y + 2 /\\ x < z"
    ));
}

#[test]
fn frobenius_boundary_via_free_variable() {
    // As a predicate on x: representable(x) by 3s and 5s; check the gap
    // set {1, 2, 4, 7} exactly, over 0..=20.
    let parsed = parse("exists a b. a >= 0 /\\ b >= 0 /\\ x = 3 * a + 5 * b").unwrap();
    let qf = eliminate_quantifiers(&parsed.formula);
    assert!(qf.is_quantifier_free());
    for x in 0i64..=20 {
        let representable = ![1, 2, 4, 7].contains(&x);
        assert_eq!(qf.eval_qf(&[x]), representable, "x = {x}");
    }
}
