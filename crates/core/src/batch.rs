//! Batched interaction engine: Θ(√n) interactions per handful of RNG draws.
//!
//! The sequential engine ([`Simulation::step`]) pays two RNG draws and two
//! `O(|Q|)` cumulative-count walks per interaction, so the `Θ(n log n)`
//! interaction counts of the paper's protocols (§4–§5) cost `Θ(n log n)`
//! draws to check empirically. This module executes the *same* Markov chain
//! in batches: one batch advances up to `⌊√n⌋` interactions while drawing
//! only `O(|Q|²)` random numbers, which makes the amortized cost per
//! simulated interaction `O(|Q|² / √n)` — vanishing at the large populations
//! where the mean-field regime (Bournez et al.) and the fast-simulation
//! regime (Kosowski–Uznański) live.
//!
//! Batching speeds up **one** trajectory; it is orthogonal both to the
//! paper's parallel-*time* rounds (§3.2, see
//! [`Simulation::measure_stabilization_rounds`](crate::engine::Simulation::measure_stabilization_rounds))
//! and to thread-level Monte Carlo over independent trials
//! ([`crate::ensemble`], which composes with this module via
//! [`Ensemble::measure_stabilization_batched`](crate::ensemble::Ensemble::measure_stabilization_batched)).
//!
//! # Exactness
//!
//! [`Simulation::run_batched`] is distributed **identically** to the same
//! number of [`Simulation::step`] calls; it is a sampler optimization, not
//! an approximation. The argument, piece by piece:
//!
//! **Collision-free run length.** Under uniform random pairing, consider
//! the first time an interaction touches an agent already touched since the
//! batch began. With `i` pairs (hence `2i` distinct agents) already drawn,
//! interaction `i + 1` avoids them with probability
//! `(n − 2i)(n − 2i − 1) / (n(n − 1))`, independent of anything but `i`.
//! The run length `L` (number of leading interactions touching `2L`
//! distinct agents) therefore has survival function
//! `G(i) = P(L ≥ i) = Π_{j<i} (n − 2j)(n − 2j − 1) / (n(n − 1))`, a product
//! the engine tabulates once per population size and inverts with a single
//! uniform draw and a binary search. The birthday bound puts `E[L]` at
//! `Θ(√n)`, so the table (capped at `⌊√n⌋`) stays short.
//!
//! **Capping is exact.** The engine truncates `L` at
//! `cap = min(⌊√n⌋, remaining budget)`. Executing only the first
//! `min(L, cap)` interactions of a run is exact because the chain is
//! Markov in the configuration: conditioning on "the first `cap`
//! interactions were collision-free" is exactly the event `L ≥ cap`, and
//! given the resulting configuration, later interactions are independent
//! of how the batch was produced. The next batch starts fresh.
//!
//! **The batch's states.** Conditioned on `L ≥ ℓ`, the `2ℓ` participants
//! are a uniform ordered sample *without replacement* from the population,
//! alternating initiator/responder. By exchangeability of
//! without-replacement draws this is equivalent to: draw the `ℓ` initiator
//! states as one multivariate hypergeometric sample of the state counts,
//! then give each initiator state its responder multiset by successive
//! multivariate hypergeometric draws from the common leftover pool
//! (population minus initiators minus already-claimed responders) — the
//! conditional decomposition of "draw `ℓ` responders, match uniformly"
//! ([`crate::sampling`] provides the exact samplers; each sweep visits
//! categories in descending count order, which is law-invariant and lets
//! most sweeps terminate after a few draws). All `2ℓ`
//! agents are distinct, so the `ℓ` transitions commute and can be applied
//! to the counts in bulk, grouped by state pair.
//!
//! **The collision interaction.** If `L = ℓ < cap`, interaction `ℓ + 1` is
//! by definition conditioned to touch at least one of the `2ℓ` touched
//! agents. Splitting the `n(n − 1) − (n − 2ℓ)(n − 2ℓ − 1)` colliding
//! ordered pairs by case gives weights `2ℓ(n − 2ℓ)` for
//! (touched initiator, untouched responder), the same for the reverse
//! orientation, and `2ℓ(2ℓ − 1)` for two distinct touched agents. The
//! engine picks the case by weight, then the agents uniformly from the
//! touched multiset (whose states are the *post-transition* states
//! accumulated during the bulk apply — a touched agent interacts again
//! with its new state) and the untouched multiset (current counts minus
//! touched). This one interaction is executed through the ordinary
//! sequential path.
//!
//! Each piece reproduces the conditional law of the sequential chain given
//! the previous pieces, so their composition is the chain itself. The only
//! thing batching forgets is the *interleaving order* of the collision-free
//! interactions — immaterial, since they commute and are exchangeable.
//!
//! # Windows: amortizing one sweep over many runs
//!
//! The probe-free fast path goes further: a **window** spans several
//! consecutive collision-free runs (up to `F·⌊√n⌋` fresh pairs, `F ≤ 4`)
//! and samples them with a *single* multiset sweep. Three observations make
//! this exact:
//!
//! 1. **Run lengths and collision roles need only counts.** The survival
//!    function of a run starting with `τ` already-touched agents is
//!    `G_τ(i) = Π_{m<i} (n−τ−2m)(n−τ−2m−1)/(n(n−1))` — a ratio
//!    `T(τ+2i)/T(τ)` of one falling-factorial table — and the probability
//!    that a colliding interaction pairs touched/touched vs touched/fresh
//!    depends only on `τ` and `n`. So all run lengths and collision *kinds*
//!    of a window can be drawn up front, one cheap inversion each, before
//!    any state is known.
//! 2. **Every newly touched agent is one exchangeable sample.** The fresh
//!    pairs of all runs, plus each "extra" agent a mixed collision drags
//!    in, are uniform without-replacement draws from the population, so
//!    their states form one multivariate hypergeometric sample: the engine
//!    draws the extras' states and then one combined pair sweep sized by
//!    the window's total fresh pairs.
//! 3. **Collision endpoints resolve by slot index.** Pair slots are filled
//!    in time order, so "a uniform touched agent at collision `c`" is a
//!    uniform (slot, endpoint) with slot below `c`'s prefix count (or one
//!    of the earlier extras). Conditioned on the sweep's group counts, the
//!    pair type of a not-yet-revealed slot is categorical over the
//!    *remaining* group counts; revealed slots keep their (post-transition,
//!    possibly collision-updated) states in a small table. Each collision
//!    thus costs O(1) draws, and the expensive sweep amortizes over
//!    `≈ F√n` interactions instead of `≈ 0.63√n`.
//!
//! # Probes
//!
//! A batch is reported to the attached [`Probe`] as one
//! [`BatchEvent`] carrying the transitions
//! grouped by state pair; the default [`Probe::on_batch`] replays them
//! through `on_interaction`/`on_output_change`, so existing probes observe
//! a batched run exactly as a sequential one (up to within-batch order).
//! Probe-active runs use single-run batches (one collision per batch) so
//! the replay covers every interaction; only probe-free runs
//! ([`NoProbe`](crate::observe::NoProbe), which compiles observation away
//! entirely) take the multi-run window path — the two paths sample the
//! same law, so attaching a probe never changes the distribution, only the
//! RNG stream.
//!
//! # When to use what
//!
//! * [`Simulation::run_batched`] — large populations (n ≳ 10⁴), *before*
//!   convergence, when most interactions still change state.
//! * [`Simulation::leap`] — *after* effective convergence, when almost all
//!   interactions are no-ops: it fast-forwards the no-op geometric tail in
//!   closed form, which batching does not.
//! * [`Simulation::step`] — small populations, or when per-interaction
//!   control flow is needed.

use rand::Rng;

use crate::config::CountConfig;
use crate::engine::{Simulation, StabilizationReport};
use crate::observe::{BatchEvent, BatchPair, Probe};
use crate::protocol::Protocol;
use crate::registry::StateId;
use crate::sampling::hypergeometric;
use crate::trace::{SpanKind, Tracer};

/// How a window-ending-run interaction collided: which of its two roles hit
/// the touched set. (A fresh/fresh pair would, by definition, not collide.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollisionKind {
    /// Both agents already touched.
    TouchedTouched,
    /// Touched initiator, previously-untouched responder (an "extra").
    TouchedFresh,
    /// Previously-untouched initiator, touched responder.
    FreshTouched,
}

/// One collision recorded during a window's counting phase: everything
/// needed to resolve its endpoints later is a pair of prefix sizes plus the
/// role split.
#[derive(Debug, Clone, Copy)]
struct Collision {
    /// Fresh pairs completed before this collision (its slot-index bound).
    prefix_pairs: u64,
    /// Extras that joined the touched set before this collision.
    extras_prior: u32,
    kind: CollisionKind,
}

/// A pair slot whose states have been revealed by a collision draw:
/// `states` holds the *current* states of its initiator/responder endpoints
/// (post-transition, updated again if a later collision hits them).
#[derive(Debug, Clone, Copy)]
struct MatSlot {
    slot: u64,
    states: [StateId; 2],
}

/// Where to write an endpoint's post-collision state back to.
#[derive(Debug, Clone, Copy)]
enum TouchedRef {
    /// `mat[idx].states[side]`.
    Slot { idx: usize, side: usize },
    /// `extras[idx]`.
    Extra { idx: usize },
}

/// Reusable buffers and the survival-function tables for the batched
/// engine; lives on [`Simulation`] so repeated batches allocate nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchScratch {
    /// Population the single-run survival table was built for (0 = none).
    n: u64,
    /// `survival[i] = G(i) = P(L ≥ i)`: probability the first `i`
    /// interactions touch `2i` distinct agents (probe path).
    survival: Vec<f64>,
    /// Population the window tables were built for (0 = none).
    tab_n: u64,
    /// `ratio[k] = Π_{j<k} (n−j)/n`: normalized falling factorial. Offset
    /// survival functions are ratios of this table,
    /// `G_τ(i) = ratio[τ+2i] / (ratio[τ] · qpow[i])`; keeping each entry in
    /// `(0, 1]` (the exponent `−k²/2n` is bounded by the window size) makes
    /// the iterated product accurate to `~len·ε` relative, like the plain
    /// survival table.
    ratio: Vec<f64>,
    /// `qpow[i] = ((n−1)/n)^i`.
    qpow: Vec<f64>,
    /// Initiator state counts of the current batch.
    initiators: Vec<u64>,
    /// Agents still available for sampling: configuration counts depleted by
    /// extras, then initiators, then claimed responders.
    pool: Vec<u64>,
    /// Per-initiator-state matching draw.
    matched: Vec<u64>,
    /// Descending-count processing order for the conditional sweeps.
    perm: Vec<u32>,
    /// The batch grouped as `(initiator, responder, count)`.
    groups: Vec<(StateId, StateId, u64)>,
    /// Post-transition state counts of the batch's `2ℓ` touched agents
    /// (single-run path only).
    touched: Vec<u64>,
    /// Grouped probe event under construction (probe-active runs only).
    replay: Vec<BatchPair>,
    /// The window's collisions, in time order (counting phase output).
    colls: Vec<Collision>,
    /// Current states of the extras, in join order; entry `i` starts as the
    /// sampled pre-collision state and is updated as collisions hit it.
    extras: Vec<StateId>,
    /// Slots revealed by collision draws.
    mat: Vec<MatSlot>,
    /// Groups' not-yet-revealed slot counts (parallel to `groups`).
    grem: Vec<u64>,
}

impl BatchScratch {
    /// (Re)builds the survival table for population `n` with `cap + 1`
    /// entries; no-op when already current.
    fn ensure_survival(&mut self, n: u64, cap: u64) {
        if self.n == n && self.survival.len() == cap as usize + 1 {
            return;
        }
        self.n = n;
        self.survival.clear();
        self.survival.push(1.0);
        let denom = n as f64 * (n - 1) as f64;
        let mut g = 1.0f64;
        for i in 0..cap {
            let a = n.saturating_sub(2 * i);
            let b = a.saturating_sub(1);
            g *= a as f64 * b as f64 / denom;
            self.survival.push(g);
        }
    }

    /// Samples the collision-free run length truncated at `cap`, by
    /// inverting the tabulated survival function with one uniform draw:
    /// returns the largest `i ≤ cap` with `u < G(i)` (always ≥ 1, since
    /// `G(1) = 1`). A return value of `cap` means "no collision observed
    /// within the cap".
    fn sample_run_length(&self, rng: &mut impl Rng, cap: u64) -> u64 {
        let u = rng.gen_f64();
        let hi = (cap as usize).min(self.survival.len() - 1);
        let table = &self.survival[..=hi];
        // `survival` is non-increasing, so `u < g` holds on a prefix.
        (table.partition_point(|&g| u < g) as u64).saturating_sub(1).max(1)
    }

    /// (Re)builds the window tables for population `n`: `ratio` up to index
    /// `tau_max` and `qpow` up to index `w`; no-op when already current.
    fn ensure_window_tables(&mut self, n: u64, tau_max: u64, w: u64) {
        if self.tab_n == n
            && self.ratio.len() > tau_max as usize
            && self.qpow.len() > w as usize
        {
            return;
        }
        self.tab_n = n;
        let nf = n as f64;
        self.ratio.clear();
        self.ratio.push(1.0);
        for k in 0..tau_max {
            let next = self.ratio[k as usize] * (n - k) as f64 / nf;
            self.ratio.push(next);
        }
        let q = (n - 1) as f64 / nf;
        self.qpow.clear();
        self.qpow.push(1.0);
        for i in 0..w {
            let next = self.qpow[i as usize] * q;
            self.qpow.push(next);
        }
    }

    /// Samples a collision-free run length truncated at `budget`, for a run
    /// starting with `tau` agents already touched: the largest `i ≤ budget`
    /// with `u < G_τ(i)`, via one uniform draw and a binary search over the
    /// ratio table (`u < G_τ(i) ⟺ u·ratio[τ]·qpow[i] < ratio[τ+2i]`).
    /// Returns `budget` when no collision fell inside it; can return 0 when
    /// `tau > 0` (the very next interaction collides).
    fn sample_run_offset(&self, rng: &mut impl Rng, tau: u64, budget: u64) -> u64 {
        debug_assert!((tau + 2 * budget) < self.ratio.len() as u64);
        let u = rng.gen_f64() * self.ratio[tau as usize];
        let (mut lo, mut hi) = (0u64, budget);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if u * self.qpow[mid as usize] < self.ratio[(tau + 2 * mid) as usize] {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// Fresh-pair budget of one window, `F·⌊√n⌋`. `F` trades sweep amortization
/// (one expensive multiset sweep covers `F√n` interactions) against the
/// `≈ 2F²` expected collisions per window, each costing a few cheap draws —
/// a trade that favors larger `F` as `n` grows.
fn window_pairs(n: u64, cap: u64) -> u64 {
    let f = if n >= 262_144 {
        4
    } else if n >= 4_096 {
        2
    } else {
        1
    };
    f * cap
}

/// Hard per-window collision bound: keeps the touched set (and the ratio
/// table) `O(√n)`-sized. Ending a window early is exact — the chain is
/// Markov in the configuration — and the bound sits far above the expected
/// `2F² ≤ 32` collisions per window, so it essentially never binds.
const MAX_WINDOW_COLLISIONS: usize = 64;

/// `⌊√n⌋`, the batch cap: at this length the collision-free probability is
/// still bounded away from 0 while the per-batch sampling cost `O(|Q|²)`
/// amortizes to `O(|Q|²/√n)` per interaction.
fn default_cap(n: u64) -> u64 {
    ((n as f64).sqrt().floor() as u64).max(1)
}

/// Multivariate hypergeometric sample of `draws` agents from `counts` into
/// `out`, processed in the category order given by `perm` (descending
/// population count, precomputed once per batch). The conditional
/// decomposition is exact in any fixed category order; descending order
/// drains `m_rem` into the dominant categories first, so the sweep usually
/// terminates after a few draws and the many tiny categories are never
/// visited — and when they are, their draws sit in the near-certain-zero
/// regime the univariate sampler short-circuits.
///
/// Exposed (`pub`) so distributional tests can pin the sweep's marginals
/// directly; `perm` must list every category index exactly once, and
/// `draws` must not exceed the total population in `counts`.
pub fn mvhg_ordered_into(
    rng: &mut impl Rng,
    counts: &[u64],
    draws: u64,
    out: &mut Vec<u64>,
    perm: &[u32],
) {
    out.clear();
    out.resize(counts.len(), 0);
    let mut n_rem: u64 = counts.iter().sum();
    debug_assert!(draws <= n_rem, "cannot draw {draws} agents from population {n_rem}");
    let mut m_rem = draws;
    for &i in perm {
        if m_rem == 0 {
            break;
        }
        let c = counts[i as usize];
        if c == 0 {
            continue;
        }
        let x = if c == n_rem { m_rem } else { hypergeometric(rng, n_rem, c, m_rem) };
        out[i as usize] = x;
        n_rem -= c;
        m_rem -= x;
    }
    debug_assert_eq!(m_rem, 0, "hypergeometric sweep failed to place every draw");
}

/// Walks a count slice and returns the state holding the `idx`-th agent
/// (cumulative-count inversion, like `CountConfig::state_of_index`).
fn state_at(counts: &[u64], mut idx: u64) -> StateId {
    for (i, &c) in counts.iter().enumerate() {
        if idx < c {
            return StateId(i as u32);
        }
        idx -= c;
    }
    panic!("agent index out of range for count slice");
}

/// Returns the state of the `idx`-th *untouched* agent: the population
/// counts minus the touched multiset.
fn untouched_state_at(config: &CountConfig, touched: &[u64], mut idx: u64) -> StateId {
    for (i, &c) in config.as_slice().iter().enumerate() {
        let free = c - touched.get(i).copied().unwrap_or(0);
        if idx < free {
            return StateId(i as u32);
        }
        idx -= free;
    }
    panic!("untouched agent index out of range");
}

/// Samples the first colliding interaction after `pairs` collision-free
/// ones: an ordered pair of distinct agents conditioned to touch at least
/// one of the `2·pairs` touched agents, whose current states are the
/// multiset `touched`.
fn sample_collision_pair(
    config: &CountConfig,
    touched: &[u64],
    pairs: u64,
    rng: &mut impl Rng,
) -> (StateId, StateId) {
    let n = config.population();
    let t_total = 2 * pairs;
    let u_total = n - t_total;
    let w_mixed = t_total * u_total; // per orientation
    let w_tt = t_total * (t_total - 1);
    let case = rng.gen_range(0..2 * w_mixed + w_tt);
    if case < w_mixed {
        // Touched initiator, untouched responder.
        let p = state_at(touched, rng.gen_range(0..t_total));
        let q = untouched_state_at(config, touched, rng.gen_range(0..u_total));
        (p, q)
    } else if case < 2 * w_mixed {
        // Untouched initiator, touched responder.
        let p = untouched_state_at(config, touched, rng.gen_range(0..u_total));
        let q = state_at(touched, rng.gen_range(0..t_total));
        (p, q)
    } else {
        // Two distinct touched agents: remove the first from the multiset
        // before drawing the second.
        let p = state_at(touched, rng.gen_range(0..t_total));
        let mut second = rng.gen_range(0..t_total - 1);
        // Skip one agent in state `p` when walking for the second draw.
        for (i, &c) in touched.iter().enumerate() {
            let c = if i == p.index() { c - 1 } else { c };
            if second < c {
                return (p, StateId(i as u32));
            }
            second -= c;
        }
        unreachable!("touched multiset exhausted")
    }
}

impl<P: Protocol, Pr: Probe, Tr: Tracer> Simulation<P, Pr, Tr> {
    /// Runs `steps` interactions through the batched engine — distributed
    /// identically to [`run`](Self::run) (see the [module docs](crate::batch)
    /// for the exactness argument) but drawing `O(|Q|²)` random numbers per
    /// `Θ(√n)` interactions instead of two per interaction.
    ///
    /// [`steps`](Self::steps)/[`effective_steps`](Self::effective_steps)
    /// advance exactly as under `run`, and an attached probe sees every
    /// interaction (via [`Probe::on_batch`]).
    pub fn run_batched(&mut self, steps: u64, rng: &mut impl Rng) {
        let target = self.steps + steps;
        while self.steps < target {
            self.advance_batched(target - self.steps, rng);
        }
    }

    /// One batching unit of at most `budget ≥ 1` interactions: a multi-run
    /// window on the probe-free fast path, a single-run batch (whose
    /// grouped event replays every interaction) when a probe is attached.
    fn advance_batched(&mut self, budget: u64, rng: &mut impl Rng) -> u64 {
        if Pr::ACTIVE {
            self.batch_once(budget, rng)
        } else {
            self.window_once(budget, rng)
        }
    }

    /// Batched variant of
    /// [`measure_stabilization`](Self::measure_stabilization): runs
    /// `horizon` interactions and reports when the output assignment last
    /// became (and stayed) `expected` on every agent.
    ///
    /// Wrongness is checked at **batch boundaries**, so `stabilized_at` is
    /// rounded up to the end of the batch in which the output became
    /// correct — an overestimate of at most one batching unit (≤ `4⌊√n⌋`
    /// fresh pairs plus a bounded number of collisions, i.e. `o(1)` of any
    /// `Ω(n)` stabilization time). Convergence/divergence at the horizon is
    /// decided exactly as in the sequential version.
    pub fn measure_stabilization_batched(
        &mut self,
        expected: &P::Output,
        horizon: u64,
        rng: &mut impl Rng,
    ) -> StabilizationReport {
        let n = self.population();
        let oid = self.output_id(expected);
        let start = self.steps;
        let mut wrong = self.count_of_output(oid) != n;
        let mut last_wrong: Option<u64> = if wrong { Some(0) } else { None };
        while self.steps - start < horizon {
            self.advance_batched(horizon - (self.steps - start), rng);
            wrong = self.count_of_output(oid) != n;
            if wrong {
                last_wrong = Some(self.steps - start);
            }
        }
        StabilizationReport {
            horizon,
            stabilized_at: if wrong { None } else { Some(last_wrong.map_or(0, |t| t + 1)) },
        }
    }

    /// Executes one batch of at most `budget` interactions (at least one);
    /// returns how many were executed.
    pub(crate) fn batch_once(&mut self, budget: u64, rng: &mut impl Rng) -> u64 {
        debug_assert!(budget >= 1);
        let n = self.config.population();
        let full_cap = default_cap(n);
        let cap = full_cap.min(budget);
        if cap <= 1 {
            // Tiny population or exhausted budget: a batch of one is just a
            // sequential step (L ≥ 1 always, so no run-length draw needed).
            self.step(rng);
            return 1;
        }
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::BatchSample);
        }
        // Take the scratch off `self` so the loops below can call
        // `&mut self` engine methods (transition memoization, probes).
        let mut scratch = std::mem::take(&mut self.batch);
        scratch.ensure_survival(n, full_cap);
        let len = scratch.sample_run_length(rng, cap);
        let collide = len < cap;

        // One descending-count processing order per batch, shared by every
        // conditional sweep (pool depletion keeps big categories big, and
        // any fixed order is law-invariant).
        let counts = self.config.as_slice();
        scratch.perm.clear();
        scratch.perm.extend(0..counts.len() as u32);
        scratch.perm.sort_unstable_by_key(|&i| std::cmp::Reverse(counts[i as usize]));

        // Sample the batch's states: the initiator multiset, then each
        // initiator group's responders from the common leftover pool — the
        // conditional decomposition of "draw ℓ responders and match them
        // uniformly" (see module docs).
        mvhg_ordered_into(rng, counts, len, &mut scratch.initiators, &scratch.perm);
        scratch.pool.clear();
        scratch.pool.extend(
            self.config
                .as_slice()
                .iter()
                .zip(&scratch.initiators)
                .map(|(&c, &a)| c - a),
        );
        scratch.groups.clear();
        for s in 0..scratch.initiators.len() {
            let a_s = scratch.initiators[s];
            if a_s == 0 {
                continue;
            }
            mvhg_ordered_into(rng, &scratch.pool, a_s, &mut scratch.matched, &scratch.perm);
            for (t, &c) in scratch.matched.iter().enumerate() {
                if c > 0 {
                    scratch.groups.push((StateId(s as u32), StateId(t as u32), c));
                    scratch.pool[t] -= c;
                }
            }
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::BatchSample, len);
            self.tracer.enter(SpanKind::BatchApply);
        }

        // Apply the transitions in bulk, grouped by state pair, tracking the
        // touched agents' post-transition states for the collision draw.
        scratch.touched.clear();
        scratch.replay.clear();
        let mut effective = 0u64;
        for &(s, t, c) in &scratch.groups {
            let (s2, t2) = self.rt.transition(s, t);
            let eff = (s2, t2) != (s, t);
            if eff {
                effective += c;
            }
            self.config.apply_many((s, t), (s2, t2), c);
            let need = s2.index().max(t2.index()) + 1;
            if scratch.touched.len() < need {
                scratch.touched.resize(need, 0);
            }
            scratch.touched[s2.index()] += c;
            scratch.touched[t2.index()] += c;
            let (op, oq) = (self.rt.output_of(s), self.rt.output_of(t));
            let (op2, oq2) = (self.rt.output_of(s2), self.rt.output_of(t2));
            if (op, oq) != (op2, oq2) && (op, oq) != (oq2, op2) {
                self.bump_output(op, -(c as i64));
                self.bump_output(oq, -(c as i64));
                self.bump_output(op2, c as i64);
                self.bump_output(oq2, c as i64);
            }
            if Pr::ACTIVE {
                scratch.replay.push(BatchPair {
                    before: (s, t),
                    after: (s2, t2),
                    outputs_before: (op, oq),
                    outputs_after: (op2, oq2),
                    count: c,
                    effective: eff,
                });
            }
        }
        self.steps += len;
        self.effective_steps += effective;
        if Pr::ACTIVE {
            if Tr::ACTIVE {
                self.tracer.enter(SpanKind::Probe);
            }
            self.probe.on_batch(&BatchEvent {
                first_step: self.steps - len + 1,
                len,
                pairs: &scratch.replay,
            });
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::Probe, len);
            }
        }

        // The interaction that ended the run, if the cap did not: it must
        // touch a previously touched agent; executed sequentially.
        let mut advanced = len;
        if collide {
            let (p, q) = sample_collision_pair(&self.config, &scratch.touched, len, rng);
            let (p2, q2) = self.rt.transition(p, q);
            if self.note_interaction((p, q), (p2, q2), 0) {
                self.apply_effective((p, q), (p2, q2));
            }
            advanced += 1;
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::BatchApply, advanced);
        }
        self.batch = scratch;
        advanced
    }

    /// Executes one window of at most `budget` interactions (at least one):
    /// several collision-free runs sampled with a single combined sweep,
    /// plus their interleaved collision interactions (see the
    /// [module docs](crate::batch) § *Windows*). Returns how many
    /// interactions were executed. Probe-free path only: the window never
    /// materializes a per-interaction order, so it cannot feed a probe.
    pub(crate) fn window_once(&mut self, budget: u64, rng: &mut impl Rng) -> u64 {
        debug_assert!(budget >= 1);
        let n = self.config.population();
        let cap = default_cap(n);
        if cap <= 1 || budget == 1 {
            // Tiny population or exhausted budget: a batch of one is just a
            // sequential step.
            self.step(rng);
            return 1;
        }
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::BatchSample);
        }
        let w = window_pairs(n, cap).min(budget);
        let mut scratch = std::mem::take(&mut self.batch);
        let tau_max = (2 * w + MAX_WINDOW_COLLISIONS as u64 + 2).min(n);
        scratch.ensure_window_tables(n, tau_max, w);

        // Phase A — lengths and roles, counts only: alternate run-length
        // inversions (offset by the touched count τ) with collision-kind
        // draws until a budget binds. Neither needs any sampled state.
        scratch.colls.clear();
        let (mut tau, mut pairs, mut done) = (0u64, 0u64, 0u64);
        let mut n_extras = 0u32;
        loop {
            let room = ((tau_max - tau) / 2).min(w - pairs).min(budget - done);
            if room == 0 {
                break;
            }
            let l = scratch.sample_run_offset(rng, tau, room);
            pairs += l;
            tau += 2 * l;
            done += l;
            if l == room {
                // No collision inside the remaining budget: the window ends
                // on a collision-free prefix (exact — the chain is Markov).
                break;
            }
            // The next interaction collides. Classify its roles: among the
            // colliding ordered pairs, τ(τ−1) are touched/touched and
            // τ·(n−τ) are touched/fresh per orientation.
            let fresh = n - tau;
            let w_tt = tau * (tau - 1);
            let w_mix = tau * fresh;
            let c = rng.gen_range(0..w_tt + 2 * w_mix);
            let kind = if c < w_tt {
                CollisionKind::TouchedTouched
            } else if c < w_tt + w_mix {
                CollisionKind::TouchedFresh
            } else {
                CollisionKind::FreshTouched
            };
            scratch.colls.push(Collision {
                prefix_pairs: pairs,
                extras_prior: n_extras,
                kind,
            });
            if kind != CollisionKind::TouchedTouched {
                n_extras += 1;
                tau += 1;
            }
            done += 1;
            if done >= budget || scratch.colls.len() >= MAX_WINDOW_COLLISIONS {
                break;
            }
        }

        // Phase B — materialize the window's newly-touched agents. They are
        // one exchangeable without-replacement sample from the
        // configuration, so the decomposition order is free: extras first
        // (one categorical draw each), then the combined pair sweep from
        // the depleted pool.
        {
            let counts = self.config.as_slice();
            scratch.perm.clear();
            scratch.perm.extend(0..counts.len() as u32);
            scratch.perm.sort_unstable_by_key(|&i| std::cmp::Reverse(counts[i as usize]));
            scratch.pool.clear();
            scratch.pool.extend_from_slice(counts);
        }
        scratch.extras.clear();
        let mut pool_total = n;
        for _ in 0..n_extras {
            let s = state_at(&scratch.pool, rng.gen_range(0..pool_total));
            scratch.pool[s.index()] -= 1;
            pool_total -= 1;
            scratch.extras.push(s);
        }
        mvhg_ordered_into(rng, &scratch.pool, pairs, &mut scratch.initiators, &scratch.perm);
        for (p, a) in scratch.pool.iter_mut().zip(&scratch.initiators) {
            *p -= a;
        }
        scratch.groups.clear();
        for s in 0..scratch.initiators.len() {
            let a_s = scratch.initiators[s];
            if a_s == 0 {
                continue;
            }
            mvhg_ordered_into(rng, &scratch.pool, a_s, &mut scratch.matched, &scratch.perm);
            for (t, &c) in scratch.matched.iter().enumerate() {
                if c > 0 {
                    scratch.groups.push((StateId(s as u32), StateId(t as u32), c));
                    scratch.pool[t] -= c;
                }
            }
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::BatchSample, pairs);
            self.tracer.enter(SpanKind::BatchApply);
        }

        // Bulk-apply the fresh pairs, grouped by state pair.
        let mut effective = 0u64;
        for &(s, t, c) in &scratch.groups {
            let (s2, t2) = self.rt.transition(s, t);
            if (s2, t2) != (s, t) {
                effective += c;
            }
            self.config.apply_many((s, t), (s2, t2), c);
            let (op, oq) = (self.rt.output_of(s), self.rt.output_of(t));
            let (op2, oq2) = (self.rt.output_of(s2), self.rt.output_of(t2));
            if (op, oq) != (op2, oq2) && (op, oq) != (oq2, op2) {
                self.bump_output(op, -(c as i64));
                self.bump_output(oq, -(c as i64));
                self.bump_output(op2, c as i64);
                self.bump_output(oq2, c as i64);
            }
        }
        self.steps += pairs;
        self.effective_steps += effective;

        // Phase C — the collisions, in window order, endpoints resolved by
        // slot index against the combined sweep.
        scratch.mat.clear();
        scratch.grem.clear();
        scratch.grem.extend(scratch.groups.iter().map(|&(_, _, c)| c));
        let mut grem_total = pairs;
        for ci in 0..scratch.colls.len() {
            let coll = scratch.colls[ci];
            let ((p, pref), (q, qref)) = match coll.kind {
                CollisionKind::TouchedTouched => {
                    let (p, pref, flat) =
                        self.draw_touched(&mut scratch, coll, None, &mut grem_total, rng);
                    let (q, qref, _) =
                        self.draw_touched(&mut scratch, coll, Some(flat), &mut grem_total, rng);
                    ((p, pref), (q, qref))
                }
                CollisionKind::TouchedFresh => {
                    let (p, pref, _) =
                        self.draw_touched(&mut scratch, coll, None, &mut grem_total, rng);
                    let e = coll.extras_prior as usize;
                    ((p, pref), (scratch.extras[e], TouchedRef::Extra { idx: e }))
                }
                CollisionKind::FreshTouched => {
                    let (q, qref, _) =
                        self.draw_touched(&mut scratch, coll, None, &mut grem_total, rng);
                    let e = coll.extras_prior as usize;
                    ((scratch.extras[e], TouchedRef::Extra { idx: e }), (q, qref))
                }
            };
            let (p2, q2) = self.rt.transition(p, q);
            if self.note_interaction((p, q), (p2, q2), 0) {
                self.apply_effective((p, q), (p2, q2));
            }
            for (r, s2) in [(pref, p2), (qref, q2)] {
                match r {
                    TouchedRef::Slot { idx, side } => scratch.mat[idx].states[side] = s2,
                    TouchedRef::Extra { idx } => scratch.extras[idx] = s2,
                }
            }
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::BatchApply, done);
        }
        self.batch = scratch;
        done
    }

    /// Draws a uniform touched agent as of collision `coll` (optionally
    /// excluding the flat index of an agent already drawn for the same
    /// interaction): returns its current state, a write-back handle, and
    /// its flat index. Flat indices enumerate the `2·prefix_pairs` pair
    /// endpoints (slot-major, initiator first) followed by the
    /// `extras_prior` extras. Hitting a not-yet-revealed slot reveals its
    /// pair type — categorical over the groups' remaining slot counts,
    /// which is the exact conditional law since slot assignments are
    /// exchangeable given the sweep's group counts.
    fn draw_touched(
        &mut self,
        scratch: &mut BatchScratch,
        coll: Collision,
        exclude: Option<u64>,
        grem_total: &mut u64,
        rng: &mut impl Rng,
    ) -> (StateId, TouchedRef, u64) {
        let tau = 2 * coll.prefix_pairs + coll.extras_prior as u64;
        let span = tau - u64::from(exclude.is_some());
        let mut j = rng.gen_range(0..span);
        if let Some(e) = exclude {
            if j >= e {
                j += 1;
            }
        }
        if j < 2 * coll.prefix_pairs {
            let (slot, side) = (j / 2, (j % 2) as usize);
            if let Some(idx) = scratch.mat.iter().position(|m| m.slot == slot) {
                return (scratch.mat[idx].states[side], TouchedRef::Slot { idx, side }, j);
            }
            let mut v = rng.gen_range(0..*grem_total);
            let mut gi = 0usize;
            while v >= scratch.grem[gi] {
                v -= scratch.grem[gi];
                gi += 1;
            }
            scratch.grem[gi] -= 1;
            *grem_total -= 1;
            let (s, t, _) = scratch.groups[gi];
            let after = self.rt.transition(s, t);
            scratch.mat.push(MatSlot { slot, states: [after.0, after.1] });
            let idx = scratch.mat.len() - 1;
            (scratch.mat[idx].states[side], TouchedRef::Slot { idx, side }, j)
        } else {
            let idx = (j - 2 * coll.prefix_pairs) as usize;
            (scratch.extras[idx], TouchedRef::Extra { idx }, j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seeded_rng;
    use crate::protocol::FnProtocol;

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    #[test]
    fn survival_table_is_nonincreasing_and_exact_at_the_front() {
        let mut s = BatchScratch::default();
        s.ensure_survival(100, 10);
        assert_eq!(s.survival.len(), 11);
        assert!((s.survival[0] - 1.0).abs() < 1e-15);
        assert!((s.survival[1] - 1.0).abs() < 1e-15, "first pair never collides");
        // G(2) = (n−2)(n−3)/(n(n−1)).
        let g2 = 98.0 * 97.0 / (100.0 * 99.0);
        assert!((s.survival[2] - g2).abs() < 1e-12);
        assert!(s.survival.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn run_length_stays_in_bounds_and_matches_birthday_scale() {
        let mut s = BatchScratch::default();
        let n = 10_000u64;
        let cap = default_cap(n);
        s.ensure_survival(n, cap);
        let mut rng = seeded_rng(3);
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let l = s.sample_run_length(&mut rng, cap);
            assert!((1..=cap).contains(&l));
            sum += l;
        }
        // E[min(L, √n)] is Θ(√n); loose sanity band.
        let mean = sum as f64 / f64::from(trials);
        assert!(mean > 0.3 * cap as f64, "mean run {mean} vs cap {cap}");
    }

    #[test]
    fn batch_once_respects_budget_and_advances() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 10), (false, 90)]);
        let mut rng = seeded_rng(5);
        for budget in [1u64, 2, 3, 7, 100] {
            let before = sim.steps();
            let adv = sim.batch_once(budget, &mut rng);
            assert!(adv >= 1 && adv <= budget, "advanced {adv} with budget {budget}");
            assert_eq!(sim.steps(), before + adv);
            assert_eq!(sim.population(), 100);
        }
    }

    #[test]
    fn run_batched_hits_the_step_target_exactly() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 999)]);
        let mut rng = seeded_rng(6);
        sim.run_batched(12_345, &mut rng);
        assert_eq!(sim.steps(), 12_345);
        sim.run_batched(7, &mut rng);
        assert_eq!(sim.steps(), 12_352);
    }

    #[test]
    fn batched_epidemic_converges() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 4_095)]);
        let mut rng = seeded_rng(7);
        let rep = sim.measure_stabilization_batched(&true, 400_000, &mut rng);
        assert!(rep.converged(), "epidemic must saturate");
        // Exactly n − 1 effective interactions infect everyone.
        assert_eq!(sim.effective_steps(), 4_095);
        assert_eq!(sim.consensus_output(), Some(&true));
    }

    #[test]
    fn quiescent_configuration_batches_are_pure_noops() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 100)]);
        let mut rng = seeded_rng(8);
        sim.run_batched(5_000, &mut rng);
        assert_eq!(sim.steps(), 5_000);
        assert_eq!(sim.effective_steps(), 0);
        assert_eq!(sim.count_of_state(&true), 100);
    }
}
