//! Standard interaction-graph families.

use rand::Rng;

use crate::graph::InteractionGraph;

/// The complete interaction graph on `n` agents: all ordered pairs of
/// distinct agents (the *standard population* of §3.3).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> InteractionGraph {
    let mut edges = Vec::with_capacity(n * (n - 1));
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    InteractionGraph::new(n, edges)
}

/// The directed line `0 → 1 → … → n−1`.
///
/// §5 notes a directed line can simulate a linear-space Turing machine —
/// the opposite extreme from the complete graph.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn directed_line(n: usize) -> InteractionGraph {
    let edges = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    InteractionGraph::new(n, edges)
}

/// The undirected line: both directions between consecutive agents.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn undirected_line(n: usize) -> InteractionGraph {
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for i in 0..n as u32 - 1 {
        edges.push((i, i + 1));
        edges.push((i + 1, i));
    }
    InteractionGraph::new(n, edges)
}

/// The directed cycle `0 → 1 → … → n−1 → 0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn directed_cycle(n: usize) -> InteractionGraph {
    let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    InteractionGraph::new(n, edges)
}

/// The undirected cycle: both directions around the ring.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn undirected_cycle(n: usize) -> InteractionGraph {
    let mut edges = Vec::with_capacity(2 * n);
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        edges.push((i, j));
        edges.push((j, i));
    }
    InteractionGraph::new(n, edges)
}

/// The star with center `0`: edges in both directions between the center
/// and every other agent (a base station and its sensors).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> InteractionGraph {
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for v in 1..n as u32 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    InteractionGraph::new(n, edges)
}

/// An Erdős–Rényi `G(n, p)` digraph (each ordered pair present independently
/// with probability `p`), augmented with an undirected line so the result is
/// always weakly connected — random mobility patterns for experiments.
///
/// # Panics
///
/// Panics if `n < 2` or `p` is not in `[0, 1]`.
pub fn erdos_renyi_connected(n: usize, p: f64, rng: &mut impl Rng) -> InteractionGraph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    assert!(n >= 2, "population must have at least 2 agents");
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    // Connectivity backbone.
    for i in 0..n as u32 - 1 {
        edges.push((i, i + 1));
        edges.push((i + 1, i));
    }
    InteractionGraph::new(n, edges)
}

/// The `w × h` 2D grid: edges in both directions between horizontally and
/// vertically adjacent cells (no wrap-around). Agent `(x, y)` has id
/// `y·w + x`. The mobility pattern of sensors spread over a bounded field.
///
/// # Panics
///
/// Panics if `w · h < 2`.
pub fn grid2d(w: usize, h: usize) -> InteractionGraph {
    let n = w * h;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..h {
        for x in 0..w {
            let a = (y * w + x) as u32;
            if x + 1 < w {
                let b = a + 1;
                edges.push((a, b));
                edges.push((b, a));
            }
            if y + 1 < h {
                let b = a + w as u32;
                edges.push((a, b));
                edges.push((b, a));
            }
        }
    }
    InteractionGraph::new(n, edges)
}

/// The `w × h` 2D torus: the grid of [`grid2d`] with wrap-around edges, so
/// every agent has exactly four neighbors (fewer after deduplication when a
/// dimension is ≤ 2). The workhorse topology of the scale benches: sparse,
/// regular, and weakly connected at any size.
///
/// # Panics
///
/// Panics if `w · h < 2`.
pub fn torus2d(w: usize, h: usize) -> InteractionGraph {
    let n = w * h;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..h {
        for x in 0..w {
            let a = (y * w + x) as u32;
            let right = (y * w + (x + 1) % w) as u32;
            let down = (((y + 1) % h) * w + x) as u32;
            for b in [right, down] {
                if a != b {
                    edges.push((a, b));
                    edges.push((b, a));
                }
            }
        }
    }
    InteractionGraph::new(n, edges)
}

/// [`torus2d`] built directly in CSR form, skipping the `(u, v)` tuple list
/// and its sort entirely: each row's four neighbors are computed and sorted
/// in place, so a 10⁸-agent torus materializes in one linear pass. Falls
/// back to converting [`torus2d`] when a dimension is ≤ 2 (wrap-around
/// edges coincide there and need deduplication).
///
/// # Panics
///
/// Panics if `w · h < 2` or the edge count overflows `u32`.
pub fn torus2d_csr(w: usize, h: usize) -> crate::csr::CsrGraph {
    if w <= 2 || h <= 2 {
        return crate::csr::CsrGraph::from_graph(&torus2d(w, h));
    }
    let n = w * h;
    u32::try_from(4 * n).expect("edge count exceeds u32::MAX");
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.extend((0..=n).map(|i| 4 * i as u32));
    let mut edges = vec![0u32; 4 * n];
    for y in 0..h {
        for x in 0..w {
            let a = y * w + x;
            let mut nbrs = [
                (y * w + (x + w - 1) % w) as u32,
                (y * w + (x + 1) % w) as u32,
                (((y + h - 1) % h) * w + x) as u32,
                (((y + 1) % h) * w + x) as u32,
            ];
            nbrs.sort_unstable();
            edges[4 * a..4 * a + 4].copy_from_slice(&nbrs);
        }
    }
    crate::csr::CsrGraph::from_raw_parts(n, offsets, edges)
}

/// The `w × h × d` 3D torus: every cell is adjacent (both directions) to its
/// six axis neighbors with wrap-around. Cell `(x, y, z)` has id
/// `(z·h + y)·w + x`. Degenerate dimensions (≤ 2) collapse coincident wrap
/// edges, as in [`torus2d`].
///
/// # Panics
///
/// Panics if `w · h · d < 2`.
pub fn torus3d(w: usize, h: usize, d: usize) -> InteractionGraph {
    let n = w * h * d;
    let mut edges = Vec::with_capacity(6 * n);
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let a = ((z * h + y) * w + x) as u32;
                let right = ((z * h + y) * w + (x + 1) % w) as u32;
                let down = ((z * h + (y + 1) % h) * w + x) as u32;
                let deep = ((((z + 1) % d) * h + y) * w + x) as u32;
                for b in [right, down, deep] {
                    if a != b {
                        edges.push((a, b));
                        edges.push((b, a));
                    }
                }
            }
        }
    }
    InteractionGraph::new(n, edges)
}

/// [`torus3d`] built directly in CSR form, skipping the `(u, v)` tuple list
/// and its sort entirely — the 6-neighbor analogue of [`torus2d_csr`]: each
/// row's six neighbors are computed and sorted in place, one linear pass,
/// and the resulting layout is exactly as stencil-dictionary-friendly as
/// the 2D torus (a handful of neighborhood shapes, so `CsrScheduler`'s
/// batched gather takes the same compressed path unchanged). Falls back to
/// converting [`torus3d`] when a dimension is ≤ 2 (wrap-around edges
/// coincide there and need deduplication).
///
/// # Panics
///
/// Panics if `w · h · d < 2` or the edge count overflows `u32`.
pub fn torus3d_csr(w: usize, h: usize, d: usize) -> crate::csr::CsrGraph {
    if w <= 2 || h <= 2 || d <= 2 {
        return crate::csr::CsrGraph::from_graph(&torus3d(w, h, d));
    }
    let n = w * h * d;
    u32::try_from(6 * n).expect("edge count exceeds u32::MAX");
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.extend((0..=n).map(|i| 6 * i as u32));
    let mut edges = vec![0u32; 6 * n];
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let a = (z * h + y) * w + x;
                let mut nbrs = [
                    ((z * h + y) * w + (x + w - 1) % w) as u32,
                    ((z * h + y) * w + (x + 1) % w) as u32,
                    ((z * h + (y + h - 1) % h) * w + x) as u32,
                    ((z * h + (y + 1) % h) * w + x) as u32,
                    ((((z + d - 1) % d) * h + y) * w + x) as u32,
                    ((((z + 1) % d) * h + y) * w + x) as u32,
                ];
                nbrs.sort_unstable();
                edges[6 * a..6 * a + 6].copy_from_slice(&nbrs);
            }
        }
    }
    crate::csr::CsrGraph::from_raw_parts(n, offsets, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_has_all_ordered_pairs() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 20);
        assert!(g.is_weakly_connected());
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn lines_and_cycles() {
        assert_eq!(directed_line(4).edge_count(), 3);
        assert_eq!(undirected_line(4).edge_count(), 6);
        assert_eq!(directed_cycle(4).edge_count(), 4);
        assert_eq!(undirected_cycle(4).edge_count(), 8);
        for g in [
            directed_line(4),
            undirected_line(4),
            directed_cycle(4),
            undirected_cycle(4),
        ] {
            assert!(g.is_weakly_connected());
        }
    }

    #[test]
    fn undirected_cycle_of_two_collapses() {
        // n=2: edges (0,1) and (1,0), deduplicated.
        let g = undirected_cycle(2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn star_connects_center_to_all() {
        let g = star(6);
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_weakly_connected());
        assert!(g.has_edge(0, 5) && g.has_edge(5, 0));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn grid_and_torus_shapes() {
        // Interior grid cells have 4 neighbors, corners 2.
        let g = grid2d(4, 3);
        assert_eq!(g.population(), 12);
        assert_eq!(g.edge_count(), 2 * (3 * 3 + 4 * 2)); // 2·(h·(w−1) + w·(h−1))
        assert!(g.is_weakly_connected());
        // Every torus cell has exactly 4 neighbors when both dims > 2.
        let t = torus2d(4, 3);
        assert_eq!(t.population(), 12);
        assert_eq!(t.edge_count(), 4 * 12);
        assert!(t.is_weakly_connected());
        // Degenerate dims collapse coincident wrap edges.
        assert_eq!(torus2d(2, 1).edge_count(), 2);
    }

    #[test]
    fn torus2d_csr_matches_tuple_builder() {
        for (w, h) in [(4, 3), (5, 5), (2, 6), (3, 2), (7, 3)] {
            let csr = torus2d_csr(w, h);
            let reference = crate::csr::CsrGraph::from_graph(&torus2d(w, h));
            assert_eq!(csr, reference, "{w}x{h}");
        }
    }

    #[test]
    fn torus3d_shapes() {
        // Every cell has exactly 6 neighbors when all dims > 2.
        let t = torus3d(3, 4, 5);
        assert_eq!(t.population(), 60);
        assert_eq!(t.edge_count(), 6 * 60);
        assert!(t.is_weakly_connected());
        // Degenerate dims collapse coincident wrap edges: a 2×1×1 torus is
        // a single undirected edge.
        assert_eq!(torus3d(2, 1, 1).edge_count(), 2);
    }

    #[test]
    fn torus3d_csr_matches_tuple_builder() {
        for (w, h, d) in [(3, 3, 3), (4, 3, 5), (2, 6, 3), (3, 2, 2), (5, 4, 3), (1, 2, 1)] {
            let csr = torus3d_csr(w, h, d);
            let reference = crate::csr::CsrGraph::from_graph(&torus3d(w, h, d));
            assert_eq!(csr, reference, "{w}x{h}x{d}");
        }
    }

    #[test]
    fn erdos_renyi_always_weakly_connected() {
        let mut rng = StdRng::seed_from_u64(99);
        for &p in &[0.0, 0.05, 0.5] {
            let g = erdos_renyi_connected(20, p, &mut rng);
            assert!(g.is_weakly_connected(), "p={p}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_generators_always_weakly_connected(n in 2usize..30, p in 0.0f64..0.3) {
            let mut rng = StdRng::seed_from_u64(n as u64);
            for g in [
                complete(n),
                directed_line(n),
                undirected_line(n),
                directed_cycle(n),
                undirected_cycle(n),
                star(n),
                erdos_renyi_connected(n, p, &mut rng),
            ] {
                proptest::prop_assert!(g.is_weakly_connected());
                proptest::prop_assert!(g.spanning_tree().is_some());
                proptest::prop_assert_eq!(g.population(), n);
            }
        }

        #[test]
        fn prop_grids_and_tori_always_weakly_connected(w in 1usize..12, h in 1usize..12) {
            proptest::prop_assume!(w * h >= 2);
            for g in [grid2d(w, h), torus2d(w, h)] {
                proptest::prop_assert!(g.is_weakly_connected(), "{w}x{h}");
                proptest::prop_assert_eq!(g.population(), w * h);
            }
            let csr = torus2d_csr(w, h);
            let reference = crate::csr::CsrGraph::from_graph(&torus2d(w, h));
            proptest::prop_assert_eq!(csr, reference);
        }

        #[test]
        fn prop_torus3d_csr_matches_tuple_builder(
            w in 1usize..7,
            h in 1usize..7,
            d in 1usize..7,
        ) {
            proptest::prop_assume!(w * h * d >= 2);
            let t = torus3d(w, h, d);
            proptest::prop_assert!(t.is_weakly_connected(), "{w}x{h}x{d}");
            proptest::prop_assert_eq!(t.population(), w * h * d);
            let csr = torus3d_csr(w, h, d);
            let reference = crate::csr::CsrGraph::from_graph(&t);
            proptest::prop_assert_eq!(csr, reference);
        }

        #[test]
        fn prop_spanning_tree_parents_reach_root(n in 2usize..40) {
            let g = undirected_cycle(n);
            let parent = g.spanning_tree().unwrap();
            for v in 0..n as u32 {
                let mut cur = v;
                let mut hops = 0;
                while cur != 0 {
                    cur = parent[cur as usize];
                    hops += 1;
                    proptest::prop_assert!(hops <= n, "cycle in tree");
                }
            }
        }
    }

    #[test]
    fn erdos_renyi_p1_is_complete_plus_backbone() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(6, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 30); // dedup folds backbone into complete
    }
}
