//! E16 — §8's "defining a useful notion of time is a challenge".
//!
//! Interactions happen in parallel in a real flock; the folk conversion in
//! the population-protocol literature is *parallel time = interactions/n*.
//! This bench measures both clocks directly: sequential stabilization
//! interactions divided by n versus synchronous-rounds stabilization
//! (each round is a random maximal matching ≈ n/2 concurrent
//! interactions), for an epidemic and for majority.

use pp_bench::{fmt, mean, print_header};
use pp_core::ensemble::Ensemble;
use pp_core::{FnProtocol, Protocol, Simulation};
use pp_protocols::majority;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> + Clone {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

fn row<P: Protocol<Output = bool> + Clone>(
    label: &str,
    n: u64,
    horizon: u64,
    mk: impl Fn() -> Simulation<P> + Sync,
    expected: bool,
) {
    let trials = if pp_bench::smoke() { 3u64 } else { 30u64 };
    // Each trial measures both clocks on one RNG stream (sequential first,
    // then rounds — the order the former loop used); the ensemble runs
    // trials in parallel with offset seeding, so the printed means match
    // the old sequential loop at any thread count.
    let outcomes = Ensemble::new(trials, 0).legacy_offset_seeds().map(|_trial, rng| {
        let mut sim = mk();
        let rep = sim.measure_stabilization(&expected, horizon, rng);
        let seq = rep.stabilized_at.expect("sequential converges") as f64;

        let mut sim = mk();
        let max_rounds = 40 * n * (64 - n.leading_zeros() as u64);
        let rounds = sim
            .measure_stabilization_rounds(&expected, max_rounds, rng)
            .expect("rounds-clock converges");
        (seq, rounds as f64)
    });
    let seq: Vec<f64> = outcomes.iter().map(|&(s, _)| s).collect();
    let par: Vec<f64> = outcomes.iter().map(|&(_, r)| r).collect();
    let seq_per_n = mean(&seq) / n as f64;
    let rounds = mean(&par);
    // One round performs n/2 interactions, so rounds ≈ 2·interactions/n if
    // the two clocks agree.
    println!(
        "{:>10} {:>6} {:>14} {:>12} {:>12} {:>10}",
        label,
        n,
        fmt(mean(&seq)),
        fmt(seq_per_n),
        fmt(rounds),
        fmt(rounds / (2.0 * seq_per_n)),
    );
}

fn main() {
    println!("\nE16: §8 parallel time — sequential interactions/n vs synchronous rounds\n");
    print_header(
        &["protocol", "n", "seq inter.", "seq/n", "rounds", "ratio*"],
        &[10, 6, 14, 12, 12, 10],
    );
    println!("(*ratio = rounds / (2·seq/n); ≈ 1 when the clocks agree)\n");

    let epi_ns: &[u64] = if pp_bench::smoke() { &[64] } else { &[64, 256, 1024] };
    for &n in epi_ns {
        // E[T] ≈ n ln n for the epidemic; a 30× margin suffices.
        let horizon = 30 * n * (64 - n.leading_zeros() as u64);
        row(
            "epidemic",
            n,
            horizon,
            || Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]),
            true,
        );
    }
    println!();
    let maj_ns: &[u64] = if pp_bench::smoke() { &[32] } else { &[32, 64, 128] };
    for &n in maj_ns {
        // Output distribution is a coupon collector through the leader:
        // E[T] ≈ (n²/2)·ln n; allow a 12× margin.
        let horizon = (6.0 * (n * n) as f64 * (n as f64).ln()) as u64;
        row(
            "majority",
            n,
            horizon,
            || Simulation::from_counts(majority(), [(0usize, n / 2 - 2), (1usize, n / 2 + 2)]),
            true,
        );
    }

    println!("\npaper shape: the two time notions agree up to a small constant, so");
    println!("'interactions/n' is a sound parallel-time proxy for these protocols\n");
}
