//! `pp-server` — protocol-as-a-service over HTTP.
//!
//! ```text
//! pp-server [--addr 127.0.0.1:7878] [--threads 4] [--max-population 10000000]
//! ```
//!
//! Serves the spec-driven run API: POST a `RunSpec` JSON to `/v1/run` for
//! a deterministic `pp-run/v1` report, to `/v1/stream` for JSONL probe
//! events, and GET `/v1/protocols`, `/v1/cache`, `/healthz`. Seeded
//! requests are byte-reproducible across restarts and thread counts.

use pp_server::{serve, ServerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = expect_value(&mut args, "--addr"),
            "--threads" => {
                cfg.threads = parse_value(&mut args, "--threads");
            }
            "--max-population" => {
                cfg.max_population = parse_value(&mut args, "--max-population");
            }
            "--help" | "-h" => {
                println!(
                    "usage: pp-server [--addr HOST:PORT] [--threads N] [--max-population N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    let server = match serve(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("pp-server listening on {}", server.addr());
    loop {
        std::thread::park();
    }
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = expect_value(args, flag);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag} got unparseable value {raw:?}");
        std::process::exit(2);
    })
}
