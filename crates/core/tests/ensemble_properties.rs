//! Properties of the multi-threaded ensemble executor (`pp_core::ensemble`):
//! the same master seed must produce **byte-identical** `EnsembleReport`
//! JSON at 1, 2, and 8 threads — for the batched complete-graph path and
//! for the fault-injected path — and the mergeable statistics must agree
//! with their single-pass sequential counterparts.

use pp_core::ensemble::{Ensemble, EnsembleReport, LogHistogram, SeedMode, Welford};
use pp_core::faults::{CrashFaults, TransientCorruption};
use pp_core::observe::{MergeProbe, MetricsProbe};
use pp_core::{seeded_rng, split_seed, FnProtocol, Protocol, Simulation};
use proptest::prelude::*;
use rand::Rng;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// Three-state approximate majority (§4-style dynamics): rich enough that
/// the batched path exercises grouped transitions and collision draws.
fn approx_majority() -> impl Protocol<State = u8, Input = u8, Output = u8> {
    FnProtocol::new(
        |&x: &u8| x,
        |&q: &u8| q,
        |&p: &u8, &q: &u8| match (p, q) {
            (0, 1) => (0, 2),
            (1, 0) => (1, 2),
            (0, 2) => (0, 0),
            (1, 2) => (1, 1),
            _ => (p, q),
        },
    )
}

/// The batched complete-graph path at a given thread count.
fn batched_report(master_seed: u64, trials: u64, threads: usize) -> EnsembleReport {
    Ensemble::new(trials, master_seed)
        .with_threads(threads)
        .measure_stabilization_batched(
            |_trial| Simulation::from_counts(approx_majority(), [(1u8, 40), (0u8, 24)]),
            &1u8,
            400_000,
        )
}

/// The fault-injected path (crash burst + corruption burst) at a given
/// thread count; exercises segment aggregation too.
fn faulted_json(master_seed: u64, trials: u64, threads: usize) -> String {
    Ensemble::new(trials, master_seed)
        .with_threads(threads)
        .run_with_faults(
            |_trial| {
                let sim = Simulation::from_counts(epidemic(), [(true, 3), (false, 45)]);
                let plan = (CrashFaults::at(4_000, 4), TransientCorruption::uniform_at(9_000, 6));
                (sim, plan)
            },
            &true,
            80_000,
        )
        .to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batched_ensemble_json_is_identical_at_1_2_8_threads(
        master_seed in 0u64..10_000,
        trials in 3u64..12,
    ) {
        let base = batched_report(master_seed, trials, 1).to_json();
        prop_assert_eq!(batched_report(master_seed, trials, 2).to_json(), base.clone());
        prop_assert_eq!(batched_report(master_seed, trials, 8).to_json(), base.clone());
    }

    #[test]
    fn faulted_ensemble_json_is_identical_at_1_2_8_threads(
        master_seed in 0u64..10_000,
        trials in 3u64..10,
    ) {
        let base = faulted_json(master_seed, trials, 1);
        prop_assert_eq!(faulted_json(master_seed, trials, 2), base.clone());
        prop_assert_eq!(faulted_json(master_seed, trials, 8), base.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merged Welford moments agree with the single-pass sequential
    /// computation across random split points. The merge is algebraically
    /// exact but floating-point reassociation drifts by O(n·ε); a relative
    /// bound of 64 ulps (≈ n·ε for these sizes) is the honest contract —
    /// bit-identical ensemble output comes from fixing the fold order, not
    /// from merge being bit-exact at arbitrary splits.
    #[test]
    fn welford_merge_matches_single_pass_at_any_split(
        seed in 0u64..100_000,
        len in 2usize..400,
        split_frac in 0.0f64..1.0,
    ) {
        let mut rng = seeded_rng(seed);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e4..1e4)).collect();
        let split = ((len as f64 * split_frac) as usize).min(len);

        let mut sequential = Welford::new();
        for &x in &xs {
            sequential.push(x);
        }
        let mut left = Welford::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        let mut right = Welford::new();
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(right);

        prop_assert_eq!(left.count(), sequential.count());
        // min/max are order-insensitive: exactly equal.
        prop_assert_eq!(left.min(), sequential.min());
        prop_assert_eq!(left.max(), sequential.max());
        let ulps = 64.0 * f64::EPSILON;
        let mean_scale = sequential.mean().abs().max(1.0);
        prop_assert!(
            (left.mean() - sequential.mean()).abs() <= ulps * mean_scale,
            "mean {} vs {}", left.mean(), sequential.mean(),
        );
        let var_scale = sequential.variance().abs().max(1.0);
        prop_assert!(
            (left.variance() - sequential.variance()).abs() <= ulps * var_scale,
            "variance {} vs {}", left.variance(), sequential.variance(),
        );
    }

    /// Histogram merge is associative (and commutative): u64 bucket
    /// addition, no floating point involved.
    #[test]
    fn histogram_merge_is_associative(
        seed in 0u64..100_000,
        len_a in 0usize..50,
        len_b in 0usize..50,
        len_c in 0usize..50,
    ) {
        let mut rng = seeded_rng(seed);
        let mut fill = |len: usize| {
            let mut h = LogHistogram::new();
            for _ in 0..len {
                // Spread across many octaves, including the underflow bucket.
                h.push(rng.gen_range(0.0f64..1e9).powf(rng.gen_range(0.1..2.0)));
            }
            h
        };
        let (a, b, c) = (fill(len_a), fill(len_b), fill(len_c));

        // (a ⊕ b) ⊕ c
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // b ⊕ a (commutativity)
        let mut ba = b.clone();
        ba.merge(&a);

        prop_assert_eq!(ab_c.underflow(), a_bc.underflow());
        prop_assert_eq!(&ab_c.nonzero(), &a_bc.nonzero());
        prop_assert_eq!(&ab.nonzero(), &ba.nonzero());
        prop_assert_eq!(
            ab_c.total(),
            (len_a + len_b + len_c) as u64
        );
    }
}

#[test]
fn split_seeds_decorrelate_adjacent_masters_and_trials() {
    // Offset seeding gives trial i of master m the same stream as trial
    // i+1 of master m−1; split seeding must not.
    assert_ne!(split_seed(7, 1), split_seed(6, 2));
    assert_ne!(split_seed(7, 0), split_seed(8, 0));
    // And splitting is injective over a healthy range of trials.
    let mut seen: Vec<u64> = (0..10_000).map(|i| split_seed(42, i)).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 10_000);
}

#[test]
fn seed_modes_differ_but_both_are_deterministic() {
    let split = Ensemble::new(8, 5).with_threads(2);
    let offset = Ensemble::new(8, 5).with_threads(2).with_seed_mode(SeedMode::Offset);
    assert_ne!(split.trial_seed(1), offset.trial_seed(1));
    assert_eq!(offset.trial_seed(3), 8);
    // Same configuration → same seeds, independent of how often we ask.
    assert_eq!(split.trial_seed(4), split.trial_seed(4));
}

#[test]
fn probe_merging_is_thread_count_invariant_and_sums_counters() {
    let run = |threads: usize| {
        let ensemble = Ensemble::new(10, 11).with_threads(threads);
        let (records, probe) = ensemble.run_probed(
            |_trial| MetricsProbe::new(),
            |_trial, rng, probe| {
                let sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 19)]);
                let mut sim = sim.with_probe(probe);
                let report = sim.measure_stabilization(&true, 30_000, rng);
                let probe = sim.into_probe();
                (report.stabilized_at, probe)
            },
        );
        (records, probe)
    };
    let (records1, probe1) = run(1);
    let (records4, probe4) = run(4);
    assert_eq!(records1, records4);
    assert_eq!(probe1.interactions(), probe4.interactions());
    assert_eq!(probe1.effective_interactions(), probe4.effective_interactions());
    assert_eq!(probe1.rules_by_count(), probe4.rules_by_count());
    // Every trial ran the full horizon: the merged probe saw all of them.
    assert_eq!(probe1.interactions(), 10 * 30_000);
    // The epidemic needs exactly n−1 = 19 effective infections per trial,
    // but (true, true) meetings also count as non-effective; the merged
    // effective count is at least the 19 infections per trial.
    assert!(probe1.effective_interactions() >= 10 * 19);
}

#[test]
fn merged_metrics_probe_occupancy_is_trial_weighted() {
    // Two hand-built probes via the MergeProbe trait directly: a probe that
    // watched span 100 with 5 agents in state 0, merged with one that
    // watched span 300 with 1 agent in state 0, has mean occupancy
    // (5·100 + 1·300) / 400 = 2.0.
    use pp_core::observe::{Probe, Snapshot};
    use pp_core::StateId;
    let mk = |count: u64, span: u64| {
        let mut p = MetricsProbe::new();
        p.on_attach(&Snapshot { step: 0, occupancy: &[count], outputs: &[count] });
        p.on_interaction(&pp_core::InteractionEvent {
            step: span,
            noops_skipped: span - 1,
            before: (StateId(0), StateId(0)),
            after: (StateId(0), StateId(0)),
            outputs_before: (pp_core::OutputId(0), pp_core::OutputId(0)),
            outputs_after: (pp_core::OutputId(0), pp_core::OutputId(0)),
            effective: false,
        });
        p
    };
    let mut a = mk(5, 100);
    let b = mk(1, 300);
    a.merge(b);
    assert_eq!(a.interactions(), 400);
    assert!((a.mean_occupancy(StateId(0)) - 2.0).abs() < 1e-12);
}
