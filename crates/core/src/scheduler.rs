//! Schedulers: who interacts next?
//!
//! The model itself is nondeterministic — any encounter permitted by the
//! interaction graph may happen next, subject only to fairness (§3.1). For
//! simulation we must pick. The paper's probabilistic layer (§6,
//! *conjugating automata*) draws the ordered pair uniformly at random from
//! the edges of the interaction graph; random pairing guarantees fairness
//! with probability 1.
//!
//! [`UniformPairScheduler`] implements the complete-graph case,
//! [`EdgeListScheduler`] the general case, [`RoundRobinScheduler`] a
//! deterministic fair schedule useful in tests, and [`ScriptedScheduler`] an
//! arbitrary (possibly adversarial) fixed schedule.

use rand::{Rng, RngCore};

use crate::error::PopulationError;

/// A source of ordered agent pairs `(initiator, responder)` for agent-based
/// simulations.
pub trait PairSampler {
    /// Draws the next interacting pair. The two indices are always distinct
    /// and in `0..n`.
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32);

    /// Population size this sampler draws from.
    fn population(&self) -> usize;
}

/// Uniform random ordered pairs from the complete interaction graph — the
/// sampling rule of conjugating automata (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPairScheduler {
    n: u32,
}

impl UniformPairScheduler {
    /// Creates a sampler over `n ≥ 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; [`try_new`](Self::try_new) reports the same
    /// condition as an error instead.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: errors with
    /// [`PopulationError::PopulationTooSmall`] if `n < 2`.
    pub fn try_new(n: usize) -> Result<Self, PopulationError> {
        if n < 2 {
            return Err(PopulationError::PopulationTooSmall { n });
        }
        Ok(Self { n: u32::try_from(n).expect("population exceeds u32::MAX") })
    }
}

impl PairSampler for UniformPairScheduler {
    #[inline]
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        let u = rng.gen_range(0..self.n);
        let mut v = rng.gen_range(0..self.n - 1);
        if v >= u {
            v += 1;
        }
        (u, v)
    }

    fn population(&self) -> usize {
        self.n as usize
    }
}

/// Uniform random ordered pairs from an explicit directed edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListScheduler {
    edges: Vec<(u32, u32)>,
    n: usize,
}

impl EdgeListScheduler {
    /// Creates a sampler over the given directed edges in a population of
    /// size `n`.
    ///
    /// # Panics
    ///
    /// Panics if the edge list is empty, contains a self-loop, or refers to
    /// an agent outside `0..n`; [`try_new`](Self::try_new) reports the same
    /// conditions as errors instead.
    pub fn new(n: usize, edges: Vec<(u32, u32)>) -> Self {
        Self::try_new(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: errors with [`PopulationError::NoEdges`] on an
    /// empty edge list, [`PopulationError::SelfLoop`] on an edge `(u, u)`,
    /// or [`PopulationError::EdgeOutOfRange`] on an endpoint outside `0..n`.
    pub fn try_new(n: usize, edges: Vec<(u32, u32)>) -> Result<Self, PopulationError> {
        if edges.is_empty() {
            return Err(PopulationError::NoEdges);
        }
        for &(u, v) in &edges {
            if u == v {
                return Err(PopulationError::SelfLoop { agent: u });
            }
            if (u as usize) >= n || (v as usize) >= n {
                let agent = if (u as usize) >= n { u } else { v };
                return Err(PopulationError::EdgeOutOfRange { agent, n });
            }
        }
        Ok(Self { edges, n })
    }

    /// The directed edges this sampler draws from.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

impl PairSampler for EdgeListScheduler {
    #[inline]
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        self.edges[rng.gen_range(0..self.edges.len())]
    }

    fn population(&self) -> usize {
        self.n
    }
}

/// Deterministically cycles through every ordered pair of a complete graph.
///
/// Every permitted encounter occurs once per round, which makes executions
/// driven by this scheduler fair in the intuitive sense of §1 (and, on any
/// protocol whose configuration sequence becomes periodic, in the formal
/// sense too). Ideal for reproducible tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRobinScheduler {
    n: u32,
    next: u64,
}

impl RoundRobinScheduler {
    /// Creates a round-robin schedule over `n ≥ 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population must have at least 2 agents");
        Self { n: n as u32, next: 0 }
    }
}

impl PairSampler for RoundRobinScheduler {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> (u32, u32) {
        let pairs = u64::from(self.n) * u64::from(self.n - 1);
        let k = self.next % pairs;
        self.next += 1;
        let u = (k / u64::from(self.n - 1)) as u32;
        let mut v = (k % u64::from(self.n - 1)) as u32;
        if v >= u {
            v += 1;
        }
        (u, v)
    }

    fn population(&self) -> usize {
        self.n as usize
    }
}

/// Weighted random ordered pairs (§8's *weighted sampling* direction): the
/// initiator is drawn with probability proportional to its weight, and the
/// responder proportional to weight among the rest.
///
/// The paper conjectures that, with reasonable restrictions on the weights,
/// weighted sampling yields the same computational power as uniform
/// sampling; experiment E15 compares convergence behavior empirically.
///
/// Drawing uses a Walker alias table built once in the constructor, so each
/// draw costs `O(1)` — one uniform index plus one biased coin — instead of
/// a linear CDF scan. The responder (which must differ from the initiator)
/// is drawn by rejection against the same table; since the initiator's
/// weight share is at most that of the heaviest agent, the expected number
/// of rejections is bounded by `1 / (1 − w_max/W)`, and a bounded retry
/// budget falls back to an exact weighted scan over the remaining agents.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPairScheduler {
    weights: Vec<f64>,
    total: f64,
    /// Alias-table acceptance probability of bucket `i` (Walker/Vose).
    prob: Vec<f64>,
    /// Alias-table donor index of bucket `i`.
    alias: Vec<u32>,
}

/// Rejection budget for the responder draw before falling back to the exact
/// weighted scan. With any sane weight profile a handful suffices; the
/// fallback keeps pathological profiles (one agent carrying almost all the
/// weight) correct rather than slow-looping.
const MAX_RESPONDER_REJECTS: u32 = 64;

impl WeightedPairScheduler {
    /// Creates a sampler with one positive weight per agent.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 weights are given or any weight is not a
    /// finite positive number.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.len() >= 2, "population must have at least 2 agents");
        for &w in &weights {
            assert!(w.is_finite() && w > 0.0, "weights must be finite and positive");
        }
        let total: f64 = weights.iter().sum();
        let (prob, alias) = build_alias_table(&weights, total);
        Self { weights, total, prob, alias }
    }

    /// The agent weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// One `O(1)` draw from the alias table: pick a bucket uniformly, then
    /// accept it or take its alias.
    fn draw_alias(&self, rng: &mut dyn RngCore) -> u32 {
        let n = self.weights.len();
        let i = rng.gen_range(0..n);
        if rng.gen_f64() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }

    /// Exact weighted draw over all agents except `skip` — the rejection
    /// fallback, and the reference law the alias path must match.
    fn draw_scan(&self, rng: &mut dyn RngCore, skip: usize) -> u32 {
        let total = self.total - self.weights[skip];
        let mut x = rng.gen_range(0.0..total);
        for (i, &w) in self.weights.iter().enumerate() {
            if i == skip {
                continue;
            }
            if x < w {
                return i as u32;
            }
            x -= w;
        }
        // Floating-point slack: return the last eligible agent.
        (0..self.weights.len())
            .rev()
            .find(|&i| i != skip)
            .expect("at least two agents") as u32
    }
}

/// Builds a Walker/Vose alias table for the distribution `weights / total`:
/// buckets with below-average weight are topped up by an above-average
/// donor, giving `P(i) = (prob[i] + Σ_{j: alias[j]=i} (1 − prob[j])) / n`.
fn build_alias_table(weights: &[f64], total: f64) -> (Vec<f64>, Vec<u32>) {
    let n = weights.len();
    let mut prob = vec![0.0f64; n];
    let mut alias: Vec<u32> = (0..n as u32).collect();
    // Scaled weights: mean 1 per bucket.
    let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
    let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
    let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();
    while let Some(s) = small.pop() {
        let Some(l) = large.pop() else {
            // Floating-point slack only: an under-full bucket with no donor
            // left keeps full mass.
            prob[s] = 1.0;
            continue;
        };
        prob[s] = scaled[s];
        alias[s] = l as u32;
        // The donor gave away 1 − scaled[s] of its mass.
        scaled[l] -= 1.0 - scaled[s];
        if scaled[l] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    // Leftover donors keep full mass.
    for i in large {
        prob[i] = 1.0;
    }
    (prob, alias)
}

impl PairSampler for WeightedPairScheduler {
    fn sample(&mut self, rng: &mut dyn RngCore) -> (u32, u32) {
        let u = self.draw_alias(rng);
        // Responder: same marginal as a weighted draw excluding `u`.
        for _ in 0..MAX_RESPONDER_REJECTS {
            let v = self.draw_alias(rng);
            if v != u {
                return (u, v);
            }
        }
        (u, self.draw_scan(rng, u as usize))
    }

    fn population(&self) -> usize {
        self.weights.len()
    }
}

/// Replays a fixed, possibly adversarial, schedule; panics when exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedScheduler {
    script: Vec<(u32, u32)>,
    pos: usize,
    n: usize,
}

impl ScriptedScheduler {
    /// Creates a scheduler replaying `script` over a population of size `n`.
    pub fn new(n: usize, script: Vec<(u32, u32)>) -> Self {
        Self { script, pos: 0, n }
    }

    /// Number of scripted interactions remaining.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.pos
    }
}

impl PairSampler for ScriptedScheduler {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> (u32, u32) {
        let e = self.script[self.pos];
        self.pos += 1;
        e
    }

    fn population(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_table_encodes_exact_marginals() {
        // The table's implied law P(i) = (prob[i] + Σ_{j: alias[j]=i}
        // (1 − prob[j])) / n must equal w_i / W.
        let weights = vec![8.0, 1.0, 1.0, 1.0, 1.0, 0.5, 3.5];
        let total: f64 = weights.iter().sum();
        let (prob, alias) = build_alias_table(&weights, total);
        let n = weights.len();
        for (i, &w) in weights.iter().enumerate() {
            let mut p = prob[i];
            for j in 0..n {
                if alias[j] as usize == i && j != i {
                    p += 1.0 - prob[j];
                }
            }
            let expect = w * n as f64 / total;
            assert!((p - expect).abs() < 1e-12, "agent {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn uniform_pairs_are_distinct_and_in_range() {
        let mut s = UniformPairScheduler::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let (u, v) = s.sample(&mut rng);
            assert_ne!(u, v);
            assert!(u < 5 && v < 5);
        }
    }

    #[test]
    fn uniform_pairs_cover_all_ordered_pairs_roughly_uniformly() {
        let n = 4u32;
        let mut s = UniformPairScheduler::new(n as usize);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = std::collections::HashMap::new();
        let trials = 120_000;
        for _ in 0..trials {
            *hits.entry(s.sample(&mut rng)).or_insert(0u32) += 1;
        }
        assert_eq!(hits.len(), (n * (n - 1)) as usize);
        let expect = trials as f64 / (n * (n - 1)) as f64;
        for (&pair, &c) in &hits {
            let ratio = f64::from(c) / expect;
            assert!((0.9..1.1).contains(&ratio), "pair {pair:?} ratio {ratio}");
        }
    }

    #[test]
    fn edge_list_scheduler_samples_only_listed_edges() {
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        let mut s = EdgeListScheduler::new(3, edges.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let e = s.sample(&mut rng);
            assert!(edges.contains(&e));
        }
        assert_eq!(s.population(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_list_rejects_self_loops() {
        EdgeListScheduler::new(3, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_list_rejects_out_of_range() {
        EdgeListScheduler::new(3, vec![(0, 7)]);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        assert_eq!(
            UniformPairScheduler::try_new(1).unwrap_err(),
            PopulationError::PopulationTooSmall { n: 1 },
        );
        assert_eq!(UniformPairScheduler::try_new(2).unwrap().population(), 2);
        assert_eq!(
            EdgeListScheduler::try_new(3, vec![]).unwrap_err(),
            PopulationError::NoEdges,
        );
        assert_eq!(
            EdgeListScheduler::try_new(3, vec![(0, 1), (2, 2)]).unwrap_err(),
            PopulationError::SelfLoop { agent: 2 },
        );
        assert_eq!(
            EdgeListScheduler::try_new(3, vec![(0, 1), (5, 1)]).unwrap_err(),
            PopulationError::EdgeOutOfRange { agent: 5, n: 3 },
        );
        assert!(EdgeListScheduler::try_new(3, vec![(0, 1)]).is_ok());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn uniform_new_panics_on_tiny_population() {
        UniformPairScheduler::new(1);
    }

    #[test]
    fn round_robin_covers_every_ordered_pair_each_round() {
        let n = 5usize;
        let mut s = RoundRobinScheduler::new(n);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n * (n - 1) {
            let (u, v) = s.sample(&mut rng);
            assert_ne!(u, v);
            assert!(seen.insert((u, v)), "duplicate pair ({u},{v}) within a round");
        }
        assert_eq!(seen.len(), n * (n - 1));
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        // Agent 0 has weight 8, agents 1..4 weight 1 each: agent 0 should
        // initiate ~8/12 of the time.
        let mut s = WeightedPairScheduler::new(vec![8.0, 1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut zero_initiates = 0u32;
        let trials = 60_000;
        for _ in 0..trials {
            let (u, v) = s.sample(&mut rng);
            assert_ne!(u, v);
            assert!(u < 5 && v < 5);
            if u == 0 {
                zero_initiates += 1;
            }
        }
        let rate = f64::from(zero_initiates) / f64::from(trials);
        assert!((rate - 8.0 / 12.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_weights_match_uniform_sampler_distribution() {
        let mut s = WeightedPairScheduler::new(vec![1.0; 4]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = std::collections::HashMap::new();
        let trials = 120_000;
        for _ in 0..trials {
            *hits.entry(s.sample(&mut rng)).or_insert(0u32) += 1;
        }
        assert_eq!(hits.len(), 12);
        let expect = trials as f64 / 12.0;
        for (&pair, &c) in &hits {
            let ratio = f64::from(c) / expect;
            assert!((0.9..1.1).contains(&ratio), "pair {pair:?} ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn weighted_rejects_nonpositive_weights() {
        WeightedPairScheduler::new(vec![1.0, 0.0]);
    }

    #[test]
    fn scripted_replays_in_order() {
        let mut s = ScriptedScheduler::new(3, vec![(0, 1), (2, 1)]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), (0, 1));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.sample(&mut rng), (2, 1));
    }
}
