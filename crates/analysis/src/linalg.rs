//! Dense linear algebra: Gaussian elimination with partial pivoting.
//!
//! Sized for the Markov-chain analyses of [`crate::markov`], whose systems
//! have one unknown per transient configuration — small-`n` populations
//! only, exactly as in the paper's §6.2 polynomial-time simulation.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Error from [`solve`]: the system is (numerically) singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves `A · X = B` for `X` by Gaussian elimination with partial
/// pivoting, where `B` may have several columns. Consumes copies of the
/// inputs (they are modified in place internally).
///
/// # Errors
///
/// Returns [`SingularMatrix`] if a pivot smaller than `1e-12` is
/// encountered.
///
/// # Panics
///
/// Panics if `A` is not square or dimensions mismatch.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, SingularMatrix> {
    assert_eq!(a.rows(), a.cols(), "coefficient matrix must be square");
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let n = a.rows();
    let k = b.cols();
    let mut m = a.clone();
    let mut x = b.clone();

    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty range");
        if pivot_val < 1e-12 {
            return Err(SingularMatrix);
        }
        if pivot_row != col {
            for c in 0..n {
                let t = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = t;
            }
            for c in 0..k {
                let t = x[(col, c)];
                x[(col, c)] = x[(pivot_row, c)];
                x[(pivot_row, c)] = t;
            }
        }
        // Eliminate below.
        let p = m[(col, col)];
        for r in col + 1..n {
            let f = m[(r, col)] / p;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= f * v;
            }
            for c in 0..k {
                let v = x[(col, c)];
                x[(r, c)] -= f * v;
            }
        }
    }

    // Back-substitute.
    for col in (0..n).rev() {
        let p = m[(col, col)];
        for c in 0..k {
            let mut v = x[(col, c)];
            for j in col + 1..n {
                v -= m[(col, j)] * x[(j, c)];
            }
            x[(col, c)] = v / p;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_2x2() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let mut b = Matrix::zeros(2, 1);
        b[(0, 0)] = 5.0;
        b[(1, 0)] = 10.0;
        let x = solve(&a, &b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-9);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 0.0;
        let mut b = Matrix::zeros(2, 1);
        b[(0, 0)] = 7.0;
        b[(1, 0)] = 3.0;
        let x = solve(&a, &b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-9);
        assert!((x[(1, 0)] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_right_hand_sides() {
        let a = Matrix::identity(3);
        let mut b = Matrix::zeros(3, 2);
        for i in 0..3 {
            b[(i, 0)] = i as f64;
            b[(i, 1)] = 10.0 * i as f64;
        }
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn singular_detected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        let b = Matrix::zeros(2, 1);
        assert_eq!(solve(&a, &b), Err(SingularMatrix));
    }

    #[test]
    fn random_system_residual_is_small() {
        // Fixed pseudo-random 6x6 system; check A·x ≈ b.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, 1);
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rnd();
            }
            a[(i, i)] += 3.0; // diagonally dominant => nonsingular
            b[(i, 0)] = rnd();
        }
        let x = solve(&a, &b).unwrap();
        for i in 0..n {
            let mut dot = 0.0;
            for j in 0..n {
                dot += a[(i, j)] * x[(j, 0)];
            }
            assert!((dot - b[(i, 0)]).abs() < 1e-9);
        }
    }
}
