//! Transparency properties of the observability layer: attaching a probe
//! must never change what the simulation computes. Same seed ⇒ identical
//! reports *and* an identical RNG stream afterward (probes never draw
//! randomness), whether the run carries the default [`NoProbe`], an
//! explicit [`NoProbe`], or a live [`MetricsProbe`] — on both engines and
//! on every execution path (sequential steps, leaps, parallel rounds,
//! faulted runs).

use pp_core::observe::{ConvergenceProbe, MetricsProbe, NoProbe};
use pp_core::scheduler::UniformPairScheduler;
use pp_core::{
    seeded_rng, AgentSimulation, FnProtocol, Protocol, Simulation, StabilizationReport,
    TransientCorruption,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::RngCore;

fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

/// Three-state approximate majority (Angluin–Aspnes–Eisenstat): richer rule
/// set than the epidemic, so rule/occupancy bookkeeping is exercised.
fn approx_majority() -> impl Protocol<State = u8, Input = u8, Output = u8> {
    // 0 = zero, 1 = one, 2 = blank.
    FnProtocol::new(
        |&x: &u8| x,
        |&q: &u8| q,
        |&p: &u8, &q: &u8| match (p, q) {
            (0, 1) => (0, 2),
            (1, 0) => (1, 2),
            (0, 2) => (0, 0),
            (1, 2) => (1, 1),
            _ => (p, q),
        },
    )
}

/// Drains a few values from the RNG so stream identity after the run is
/// checked, not just the run's outcome.
fn drain(rng: &mut impl RngCore) -> [u64; 4] {
    [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn count_engine_step_path_is_probe_transparent(
        seed in 0u64..1_000,
        ones in 1u64..24,
        zeros in 1u64..24,
        horizon in 100u64..5_000,
    ) {
        type Outcome = Result<(StabilizationReport, u64, u64, [u64; 4]), TestCaseError>;
        let run = |probe: bool| -> Outcome {
            let init = [(1u8, ones), (0u8, zeros)];
            let expected = if ones > zeros { 1u8 } else { 0u8 };
            let mut rng = seeded_rng(seed);
            if probe {
                let mut sim = Simulation::from_counts(approx_majority(), init)
                    .with_probe(MetricsProbe::new());
                let rep = sim.measure_stabilization(&expected, horizon, &mut rng);
                // The probe's own accounting agrees with the engine's.
                prop_assert_eq!(sim.probe().interactions(), sim.steps());
                prop_assert_eq!(
                    sim.probe().effective_interactions(),
                    sim.effective_steps()
                );
                Ok((rep, sim.steps(), sim.effective_steps(), drain(&mut rng)))
            } else {
                let mut sim = Simulation::from_counts(approx_majority(), init);
                let rep = sim.measure_stabilization(&expected, horizon, &mut rng);
                Ok((rep, sim.steps(), sim.effective_steps(), drain(&mut rng)))
            }
        };
        prop_assert_eq!(run(false)?, run(true)?);
    }

    #[test]
    fn count_engine_leap_path_is_probe_transparent(
        seed in 0u64..1_000,
        n in 4u64..64,
    ) {
        let base = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            let t = sim.run_to_quiescence(100_000, &mut rng);
            (t, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        let probed = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)])
                .with_probe(MetricsProbe::new());
            let mut rng = seeded_rng(seed);
            let t = sim.run_to_quiescence(100_000, &mut rng);
            prop_assert_eq!(sim.probe().interactions(), sim.steps());
            prop_assert_eq!(sim.probe().effective_interactions(), sim.effective_steps());
            (t, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, probed);
    }

    #[test]
    fn count_engine_parallel_path_is_probe_transparent(
        seed in 0u64..1_000,
        n in 4u64..128,
        rounds in 1u64..60,
    ) {
        let base = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            let r = sim.measure_stabilization_rounds(&true, rounds, &mut rng);
            (r, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        let probed = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)])
                .with_probe(MetricsProbe::new());
            let mut rng = seeded_rng(seed);
            let r = sim.measure_stabilization_rounds(&true, rounds, &mut rng);
            prop_assert_eq!(sim.probe().interactions(), sim.steps());
            (r, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, probed);
    }

    #[test]
    fn agent_engine_is_probe_transparent(
        seed in 0u64..1_000,
        n in 4usize..48,
        horizon in 100u64..4_000,
    ) {
        let inputs: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let base = {
            let mut sim = AgentSimulation::from_inputs(
                epidemic(), &inputs, UniformPairScheduler::new(n));
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, horizon, &mut rng);
            (rep, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        let probed = {
            let mut sim = AgentSimulation::from_inputs(
                epidemic(), &inputs, UniformPairScheduler::new(n))
                .with_probe(MetricsProbe::new());
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, horizon, &mut rng);
            prop_assert_eq!(sim.probe().interactions(), sim.steps());
            prop_assert_eq!(sim.probe().effective_interactions(), sim.effective_steps());
            (rep, sim.steps(), sim.effective_steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, probed);
    }

    #[test]
    fn faulted_runs_are_probe_transparent(
        seed in 0u64..1_000,
        n in 8u64..64,
        burst in 1u64..2_000,
        corruptions in 1u64..6,
    ) {
        let horizon = 4_000;
        let base = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut plan = TransientCorruption::<bool>::uniform_at(burst, corruptions);
            let mut rng = seeded_rng(seed);
            let rep = sim.run_with_faults(&mut plan, &true, horizon, &mut rng);
            (rep, sim.steps(), drain(&mut rng))
        };
        let probed = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)])
                .with_probe(MetricsProbe::new());
            let mut plan = TransientCorruption::<bool>::uniform_at(burst, corruptions);
            let mut rng = seeded_rng(seed);
            let rep = sim.run_with_faults(&mut plan, &true, horizon, &mut rng);
            // The probe saw the burst and its fault tally.
            prop_assert_eq!(sim.probe().faults(), (1, corruptions));
            (rep, sim.steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, probed);
    }

    #[test]
    fn explicit_noprobe_is_identity(
        seed in 0u64..1_000,
        n in 4u64..64,
        horizon in 100u64..3_000,
    ) {
        let base = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, horizon, &mut rng);
            (rep, sim.steps(), drain(&mut rng))
        };
        let probed = {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)])
                .with_probe(NoProbe);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, horizon, &mut rng);
            (rep, sim.steps(), drain(&mut rng))
        };
        prop_assert_eq!(base, probed);
    }

    #[test]
    fn convergence_probe_matches_measure_stabilization(
        seed in 0u64..1_000,
        ones in 1u64..20,
        zeros in 1u64..20,
        horizon in 100u64..5_000,
    ) {
        // The online tracker must reproduce the retrospective measurement.
        let expected = if ones > zeros { 1u8 } else { 0u8 };
        let mut sim =
            Simulation::from_counts(approx_majority(), [(1u8, ones), (0u8, zeros)]);
        let out = sim.output_id(&expected);
        let mut sim = sim.with_probe(ConvergenceProbe::for_output(out));
        let mut rng = seeded_rng(seed);
        let rep = sim.measure_stabilization(&expected, horizon, &mut rng);
        prop_assert_eq!(sim.probe().stabilized_at(), rep.stabilized_at);
        prop_assert_eq!(sim.probe().converged(), rep.converged());
    }
}
