//! Simulation engine: executes protocols under a scheduler and measures
//! stabilization.
//!
//! Two engines are provided:
//!
//! * [`Simulation`] — the fast path for the *standard population* (complete
//!   interaction graph, §3.3) under uniform random pairing (the conjugating
//!   automaton model of §6). Because agents are anonymous, the engine works
//!   on the multiset of states ([`CountConfig`]) and one interaction costs
//!   `O(|Q|)` time independent of the population size.
//! * [`AgentSimulation`] — per-agent states driven by any
//!   [`PairSampler`], for restricted interaction graphs (§5) or scripted
//!   adversarial schedules.
//!
//! # Measuring convergence
//!
//! A computation *converges* when it reaches an output-stable configuration
//! (§3.2); individual agents never know this happened. Simulations measure
//! it retrospectively: run a horizon of interactions, record the last
//! interaction after which the output assignment differed from the expected
//! stable output, and require a long correct tail
//! ([`measure_stabilization`](Simulation::measure_stabilization)). For
//! function computation where the stable output is not known a priori,
//! [`run_until_silent`](Simulation::run_until_silent) instead records the
//! last change of the output multiset.
//!
//! # Parallel time vs. parallel threads
//!
//! The paper's "parallel time" (§3.2) counts `n` interactions as one time
//! unit; [`measure_stabilization_rounds`](Simulation::measure_stabilization_rounds)
//! measures it in matching rounds. That is a *modelling* notion. Two other
//! axes of this crate sound similar but are orthogonal: [`crate::batch`]
//! executes one trajectory faster (exact batched sampling, still a single
//! sequential process), and [`crate::ensemble`] runs many independent
//! trials on OS threads (Monte Carlo throughput, each trial still
//! sequential).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::agent_batch::AgentBatchScratch;
use crate::batch::BatchScratch;
use crate::config::{AgentConfig, AgentStore, CountConfig};
use crate::error::PopulationError;
use crate::observe::{InteractionEvent, NoProbe, Probe, Snapshot};
use crate::protocol::{CoinProtocol, Protocol};
use crate::registry::{DenseRuntime, OutputId, StateId};
use crate::scheduler::PairSampler;
use crate::trace::{NoTracer, SpanKind, Tracer};

/// Creates a reproducible random number generator from a seed.
///
/// All stochastic components in this workspace take an explicit RNG so every
/// experiment is replayable.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Outcome of a stabilization measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizationReport {
    /// Total interactions executed.
    pub horizon: u64,
    /// The first interaction index after which the output assignment was
    /// *continuously* the expected one through the end of the horizon
    /// (`0` if the initial configuration already had the expected output);
    /// `None` if the output was still wrong at the end of the horizon.
    pub stabilized_at: Option<u64>,
}

/// The one shared recovery/convergence predicate: given that `wrong` agents
/// currently disagree with the expected output and the last interaction (or
/// slot) index at which any agent disagreed was `last_wrong`, returns the
/// index at which consensus was (re-)established — `default` if no
/// disagreement was ever seen — or `None` while disagreement persists.
///
/// The `+ 1` encodes the repo-wide convention that an output wrong *after*
/// interaction `t` becomes correct at the earliest after interaction `t + 1`.
/// Every stabilization / recovery check in the workspace
/// ([`Simulation::measure_stabilization`],
/// [`AgentSimulation::measure_stabilization`],
/// `ConvergenceProbe::stabilized_at`, and fault-segment closing in
/// [`faults`](crate::faults)) routes through this helper so the notions can
/// never drift apart.
#[inline]
pub fn consensus_reached(wrong: u64, last_wrong: Option<u64>, default: u64) -> Option<u64> {
    if wrong > 0 {
        None
    } else {
        Some(last_wrong.map_or(default, |t| t + 1))
    }
}

impl StabilizationReport {
    /// Whether the expected output held at the end of the run.
    pub fn converged(&self) -> bool {
        self.stabilized_at.is_some()
    }

    /// Length of the correct tail (interactions after stabilization).
    pub fn silent_tail(&self) -> u64 {
        match self.stabilized_at {
            Some(t) => self.horizon - t,
            None => 0,
        }
    }
}

/// Fast complete-graph simulation on the multiset of states, with the
/// uniform random pairing of conjugating automata (§6).
///
/// # Example
///
/// Majority-style epidemic: one alerted agent alerts everyone.
///
/// ```
/// use pp_core::{FnProtocol, Simulation, seeded_rng};
///
/// let epidemic = FnProtocol::new(
///     |&b: &bool| b,
///     |&q: &bool| q,
///     |&p: &bool, &q: &bool| (p || q, p || q),
/// );
/// let mut sim = Simulation::from_counts(epidemic, [(true, 1), (false, 99)]);
/// let mut rng = seeded_rng(42);
/// let report = sim.measure_stabilization(&true, 100_000, &mut rng);
/// assert!(report.converged());
/// ```
///
/// # Observability
///
/// The second type parameter is a [`Probe`] (see [`crate::observe`]) that
/// watches the run from inside the engine; the default [`NoProbe`] compiles
/// the whole observability layer away. Attach one with
/// [`with_probe`](Self::with_probe). The third parameter is a [`Tracer`]
/// (see [`crate::trace`]) that times engine *phases* rather than protocol
/// events; the default [`NoTracer`] likewise costs nothing. Attach one with
/// [`with_tracer`](Self::with_tracer).
#[derive(Debug, Clone)]
pub struct Simulation<P: Protocol, Pr = NoProbe, Tr = NoTracer> {
    pub(crate) rt: DenseRuntime<P>,
    pub(crate) config: CountConfig,
    /// Agents per output id, kept in sync with `config`.
    pub(crate) output_counts: Vec<u64>,
    pub(crate) steps: u64,
    pub(crate) effective_steps: u64,
    pub(crate) probe: Pr,
    pub(crate) tracer: Tr,
    scratch: EngineScratch,
    pub(crate) batch: BatchScratch,
}

/// Reusable buffers for [`leap`](Simulation::leap) and
/// [`parallel_round`](Simulation::parallel_round), kept on the simulation so
/// the hot paths allocate nothing per call.
#[derive(Debug, Clone, Default)]
struct EngineScratch {
    /// Per-reactive-pair weights under the current configuration.
    leap_weights: Vec<u64>,
    /// Agents not yet matched this round.
    round_pending: CountConfig,
    /// Post-round configuration under construction.
    round_next: CountConfig,
    /// Pre-round output histogram (probe-active rounds only).
    round_outputs: Vec<u64>,
}

impl<P: Protocol> Simulation<P> {
    /// Creates a simulation from `(input, multiplicity)` pairs: the
    /// symbol-count way of describing the initial sensor readings.
    ///
    /// # Panics
    ///
    /// Panics if the total population is smaller than 2.
    pub fn from_counts<I>(protocol: P, inputs: I) -> Self
    where
        I: IntoIterator<Item = (P::Input, u64)>,
    {
        let mut rt = DenseRuntime::new(protocol);
        let mut config = CountConfig::empty();
        for (x, k) in inputs {
            let s = rt.intern_input(&x);
            config.add(s, k);
        }
        Self::from_parts(rt, config)
    }

    /// Creates a simulation giving each agent an explicit input symbol.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 inputs are supplied.
    pub fn from_inputs<I>(protocol: P, inputs: I) -> Self
    where
        I: IntoIterator<Item = P::Input>,
    {
        let mut rt = DenseRuntime::new(protocol);
        let mut config = CountConfig::empty();
        for x in inputs {
            let s = rt.intern_input(&x);
            config.add(s, 1);
        }
        Self::from_parts(rt, config)
    }

    /// Creates a simulation from explicit initial *states* (useful for
    /// populations with a designated leader, §6.1).
    ///
    /// # Panics
    ///
    /// Panics if the total population is smaller than 2.
    pub fn from_states<I>(protocol: P, states: I) -> Self
    where
        I: IntoIterator<Item = (P::State, u64)>,
    {
        let mut rt = DenseRuntime::new(protocol);
        let mut config = CountConfig::empty();
        for (s, k) in states {
            let id = rt.intern(s);
            config.add(id, k);
        }
        Self::from_parts(rt, config)
    }

    fn from_parts(rt: DenseRuntime<P>, config: CountConfig) -> Self {
        assert!(config.population() >= 2, "population must have at least 2 agents");
        let mut sim = Self {
            rt,
            config,
            output_counts: Vec::new(),
            steps: 0,
            effective_steps: 0,
            probe: NoProbe,
            tracer: NoTracer,
            scratch: EngineScratch::default(),
            batch: BatchScratch::default(),
        };
        sim.rebuild_output_counts();
        sim
    }
}

impl<P: Protocol, Pr: Probe, Tr: Tracer> Simulation<P, Pr, Tr> {
    /// Attaches a probe (see [`crate::observe`]), returning the probed
    /// simulation; the probe's `on_attach` hook receives the current
    /// configuration. Any previously attached probe is dropped; the tracer
    /// is carried over unchanged.
    ///
    /// Pass `&mut probe` to keep ownership of the probe at the call site.
    pub fn with_probe<Pr2: Probe>(self, mut probe: Pr2) -> Simulation<P, Pr2, Tr> {
        if Pr2::ACTIVE {
            probe.on_attach(&Snapshot {
                step: self.steps,
                occupancy: self.config.as_slice(),
                outputs: &self.output_counts,
            });
        }
        Simulation {
            rt: self.rt,
            config: self.config,
            output_counts: self.output_counts,
            steps: self.steps,
            effective_steps: self.effective_steps,
            probe,
            tracer: self.tracer,
            scratch: self.scratch,
            batch: self.batch,
        }
    }

    /// Attaches a tracer (see [`crate::trace`]), returning the traced
    /// simulation; the probe is carried over unchanged. Any previously
    /// attached tracer is dropped.
    ///
    /// Pass `&mut tracer` to keep ownership of the tracer at the call site.
    pub fn with_tracer<Tr2: Tracer>(self, tracer: Tr2) -> Simulation<P, Pr, Tr2> {
        Simulation {
            rt: self.rt,
            config: self.config,
            output_counts: self.output_counts,
            steps: self.steps,
            effective_steps: self.effective_steps,
            probe: self.probe,
            tracer,
            scratch: self.scratch,
            batch: self.batch,
        }
    }

    /// The attached probe.
    pub fn probe(&self) -> &Pr {
        &self.probe
    }

    /// Mutable access to the attached probe (e.g. to reset a metrics window
    /// between phases).
    pub fn probe_mut(&mut self) -> &mut Pr {
        &mut self.probe
    }

    /// Consumes the simulation and returns the probe.
    pub fn into_probe(self) -> Pr {
        self.probe
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &Tr {
        &self.tracer
    }

    /// Mutable access to the attached tracer.
    pub fn tracer_mut(&mut self) -> &mut Tr {
        &mut self.tracer
    }

    /// Consumes the simulation and returns the tracer.
    pub fn into_tracer(self) -> Tr {
        self.tracer
    }

    /// Interns `out` and returns its dense output id — e.g. to configure an
    /// output-keyed probe such as
    /// [`ConvergenceProbe`](crate::observe::ConvergenceProbe).
    pub fn output_id(&mut self, out: &P::Output) -> OutputId {
        self.rt.intern_output(out.clone())
    }

    /// Single accounting path for every executed interaction: sequential
    /// [`step`](Self::step)s, [`leap`](Self::leap)s, and
    /// [`parallel_round`](Self::parallel_round) pairs all come through here,
    /// so the `steps`/`effective_steps` counters cannot drift between
    /// execution paths and a probe sees every interaction exactly once.
    /// Returns whether the interaction was effective.
    #[inline]
    pub(crate) fn note_interaction(
        &mut self,
        before: (StateId, StateId),
        after: (StateId, StateId),
        noops_skipped: u64,
    ) -> bool {
        self.steps += noops_skipped + 1;
        let effective = after != before;
        // Branchless: `effective` flips per interaction near convergence,
        // so a conditional increment would be a mispredicted branch in the
        // hottest loop of the engine.
        self.effective_steps += u64::from(effective);
        if Pr::ACTIVE {
            let ev = InteractionEvent {
                step: self.steps,
                noops_skipped,
                before,
                after,
                outputs_before: (self.rt.output_of(before.0), self.rt.output_of(before.1)),
                outputs_after: (self.rt.output_of(after.0), self.rt.output_of(after.1)),
                effective,
            };
            self.probe.on_interaction(&ev);
        }
        effective
    }

    /// Applies an effective transition to the configuration and the output
    /// counts; returns whether the output *multiset* changed.
    #[inline]
    pub(crate) fn apply_effective(
        &mut self,
        before: (StateId, StateId),
        after: (StateId, StateId),
    ) -> bool {
        self.config.apply(before, after);
        let (op, oq) = (self.rt.output_of(before.0), self.rt.output_of(before.1));
        let (op2, oq2) = (self.rt.output_of(after.0), self.rt.output_of(after.1));
        if (op, oq) == (op2, oq2) || (op, oq) == (oq2, op2) {
            false
        } else {
            self.bump_output(op, -1);
            self.bump_output(oq, -1);
            self.bump_output(op2, 1);
            self.bump_output(oq2, 1);
            if Pr::ACTIVE {
                self.probe.on_output_change(self.steps);
            }
            true
        }
    }

    /// Notifies the probe (and the tracer, as an instant event) that a fault
    /// plan just damaged the configuration.
    pub(crate) fn probe_fault_burst(&mut self, injected: u64) {
        if Tr::ACTIVE {
            self.tracer.instant(SpanKind::FaultBurst, injected);
        }
        if Pr::ACTIVE {
            self.probe.on_fault_burst(
                injected,
                &Snapshot {
                    step: self.steps,
                    occupancy: self.config.as_slice(),
                    outputs: &self.output_counts,
                },
            );
        }
    }

    fn rebuild_output_counts(&mut self) {
        self.output_counts.clear();
        self.output_counts.resize(self.rt.output_count(), 0);
        let pairs: Vec<(StateId, u64)> = self.config.support().collect();
        for (s, k) in pairs {
            let o = self.rt.output_of(s);
            self.output_counts[o.index()] += k;
        }
    }

    #[inline]
    pub(crate) fn bump_output(&mut self, o: OutputId, delta: i64) {
        if o.index() >= self.output_counts.len() {
            self.output_counts.resize(self.rt.output_count(), 0);
        }
        let c = &mut self.output_counts[o.index()];
        *c = c.checked_add_signed(delta).expect("output count underflow");
    }

    /// Population size `n`.
    pub fn population(&self) -> u64 {
        self.config.population()
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Interactions that changed at least one agent's state — the paper's
    /// §8 candidate energy measure ("the number of interactions in which at
    /// least one state changes"). Always ≤ [`steps`](Self::steps); the gap
    /// is the no-op tail after effective convergence.
    pub fn effective_steps(&self) -> u64 {
        self.effective_steps
    }

    /// The current configuration (multiset of states).
    pub fn config(&self) -> &CountConfig {
        &self.config
    }

    /// Removes one agent currently in the given state — fault injection in
    /// the sense of §8: "if an agent dies, the interactions between the
    /// remaining agents are unaffected". Returns `false` if no agent is in
    /// that state.
    ///
    /// # Panics
    ///
    /// Panics if a removal would shrink the population below 2 agents.
    pub fn crash_agent_in_state(&mut self, state: &P::State) -> bool {
        let id = self.rt.intern(state.clone());
        if self.config.count(id) == 0 {
            return false;
        }
        assert!(self.config.population() > 2, "population must keep at least 2 agents");
        self.config.remove(id, 1);
        let o = self.rt.output_of(id);
        self.bump_output(o, -1);
        true
    }

    /// Removes one uniformly random agent (fault injection, §8), returning
    /// its state.
    ///
    /// # Panics
    ///
    /// Panics if the population is already at 2 agents.
    pub fn crash_random_agent(&mut self, rng: &mut impl Rng) -> P::State {
        assert!(self.config.population() > 2, "population must keep at least 2 agents");
        let idx = rng.gen_range(0..self.config.population());
        let id = self.config.state_of_index(idx);
        self.config.remove(id, 1);
        let o = self.rt.output_of(id);
        self.bump_output(o, -1);
        self.rt.state(id).clone()
    }

    /// Rewrites the state of one uniformly random agent to `to` — transient
    /// corruption in the sense of §8's self-stabilization discussion (the
    /// adversary scrambles memory but the agent keeps interacting). Returns
    /// the state the victim was in. Population size is unchanged.
    pub fn corrupt_random_agent(&mut self, to: &P::State, rng: &mut impl Rng) -> P::State {
        let idx = rng.gen_range(0..self.config.population());
        let old = self.config.state_of_index(idx);
        let new = self.rt.intern(to.clone());
        self.config.remove(old, 1);
        self.config.ensure_len(new.index() + 1);
        self.config.add(new, 1);
        let (oo, on) = (self.rt.output_of(old), self.rt.output_of(new));
        if oo != on {
            self.bump_output(oo, -1);
            self.bump_output(on, 1);
        }
        self.rt.state(old).clone()
    }

    /// Rewrites the state of one uniformly random agent to `f(old)` — the
    /// state-*function* form of
    /// [`corrupt_random_agent`](Self::corrupt_random_agent), used by
    /// [`CorruptionMode::Targeted`](crate::faults::CorruptionMode) to aim at
    /// whatever the victim currently is (current leader, current rank, …).
    /// Returns the state the victim was in.
    pub fn corrupt_random_agent_with(
        &mut self,
        f: impl FnOnce(&P::State) -> P::State,
        rng: &mut impl Rng,
    ) -> P::State {
        let idx = rng.gen_range(0..self.config.population());
        let old = self.config.state_of_index(idx);
        let old_state = self.rt.state(old).clone();
        let new = self.rt.intern(f(&old_state));
        self.config.remove(old, 1);
        self.config.ensure_len(new.index() + 1);
        self.config.add(new, 1);
        let (oo, on) = (self.rt.output_of(old), self.rt.output_of(new));
        if oo != on {
            self.bump_output(oo, -1);
            self.bump_output(on, 1);
        }
        old_state
    }

    /// Replaces the state of **every** agent: agent `i` (under the canonical
    /// agent ordering, `0..n`) gets `f(i)`. The adversary of
    /// self-stabilization ([`AdversarialInit`](crate::faults::AdversarialInit))
    /// uses this to start a run from an arbitrary configuration; population
    /// size, step counters, and the RNG stream are untouched.
    pub fn overwrite_states(&mut self, mut f: impl FnMut(u64) -> P::State) {
        let n = self.config.population();
        let mut next = CountConfig::empty();
        for i in 0..n {
            let id = self.rt.intern(f(i));
            next.add(id, 1);
        }
        next.ensure_len(self.rt.state_count());
        self.config = next;
        self.rebuild_output_counts();
    }

    /// A uniformly random state among those the runtime has interned so far
    /// (every state that has ever been occupied this run). Used by the
    /// uniform corruption fault model.
    pub fn random_known_state(&mut self, rng: &mut impl Rng) -> P::State {
        let k = self.rt.state_count();
        assert!(k > 0, "no states interned yet");
        self.rt.state(StateId(rng.gen_range(0..k as u32))).clone()
    }

    /// The dense runtime (state/output interner and transition cache).
    pub fn runtime(&self) -> &DenseRuntime<P> {
        &self.rt
    }

    /// Mutable access to the runtime, e.g. to pre-intern states.
    pub fn runtime_mut(&mut self) -> &mut DenseRuntime<P> {
        &mut self.rt
    }

    /// Number of agents currently in the given state.
    pub fn count_of_state(&mut self, state: &P::State) -> u64 {
        let id = self.rt.intern(state.clone());
        self.config.count(id)
    }

    /// Number of agents whose current output equals `out`.
    pub fn count_with_output(&mut self, out: &P::Output) -> u64 {
        for oid in 0..self.rt.output_count() as u32 {
            if self.rt.output_value(OutputId(oid)) == out {
                return self.output_counts.get(oid as usize).copied().unwrap_or(0);
            }
        }
        0
    }

    /// If every agent currently has the same output, returns it.
    pub fn consensus_output(&self) -> Option<&P::Output> {
        let n = self.config.population();
        self.output_counts
            .iter()
            .position(|&c| c == n)
            .map(|i| self.rt.output_value(OutputId(i as u32)))
    }

    /// The multiset of current outputs as `(output, count)` pairs.
    pub fn output_histogram(&self) -> Vec<(P::Output, u64)> {
        self.output_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.rt.output_value(OutputId(i as u32)).clone(), c))
            .collect()
    }

    /// Draws one interacting pair uniformly at random (ordered, distinct
    /// agents) and returns their states `(initiator, responder)`.
    #[inline]
    fn sample_pair(&mut self, rng: &mut impl Rng) -> (StateId, StateId) {
        let n = self.config.population();
        let p = self.config.state_of_index(rng.gen_range(0..n));
        // Draw the responder from the population minus the initiator agent.
        self.config.remove(p, 1);
        let q = self.config.state_of_index(rng.gen_range(0..n - 1));
        self.config.add(p, 1);
        (p, q)
    }

    /// Executes one interaction; returns `true` if the output multiset
    /// changed.
    pub fn step(&mut self, rng: &mut impl Rng) -> bool {
        let (p, q) = self.sample_pair(rng);
        let (p2, q2) = self.rt.transition(p, q);
        if !self.note_interaction((p, q), (p2, q2), 0) {
            return false;
        }
        self.apply_effective((p, q), (p2, q2))
    }

    /// Runs `steps` interactions.
    pub fn run(&mut self, steps: u64, rng: &mut impl Rng) {
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::SchedulerDraw);
        }
        for _ in 0..steps {
            self.step(rng);
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::SchedulerDraw, steps);
        }
    }

    /// Runs until every agent outputs `expected` (returning the number of
    /// interactions that took) or until `max_steps` is exhausted (`None`).
    ///
    /// Note this detects the *first* time consensus holds, which is not yet
    /// stabilization — the output could still change later. Use
    /// [`measure_stabilization`](Self::measure_stabilization) for the
    /// paper's notion.
    pub fn run_until_consensus(
        &mut self,
        expected: &P::Output,
        max_steps: u64,
        rng: &mut impl Rng,
    ) -> Option<u64> {
        let n = self.population();
        // Resolve the expected output id once; the per-step check is then a
        // single index instead of a scan over all interned outputs.
        let oid = self.output_id(expected);
        if self.count_of_output(oid) == n {
            return Some(self.steps);
        }
        for _ in 0..max_steps {
            self.step(rng);
            if self.count_of_output(oid) == n {
                return Some(self.steps);
            }
        }
        None
    }

    /// Number of agents whose current output has the given interned id
    /// (see [`output_id`](Self::output_id)); the `O(1)` form of
    /// [`count_with_output`](Self::count_with_output).
    #[inline]
    pub fn count_of_output(&self, oid: OutputId) -> u64 {
        self.output_counts.get(oid.index()).copied().unwrap_or(0)
    }

    /// Runs `horizon` interactions and reports when the output assignment
    /// last became (and stayed) equal to `expected` on every agent.
    pub fn measure_stabilization(
        &mut self,
        expected: &P::Output,
        horizon: u64,
        rng: &mut impl Rng,
    ) -> StabilizationReport {
        let n = self.population();
        let oid = self.output_id(expected);
        // `wrong` is recomputed only when the output multiset changes.
        let mut wrong = n - self.count_of_output(oid);
        let mut last_wrong: Option<u64> = if wrong > 0 { Some(0) } else { None };
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::SchedulerDraw);
        }
        for i in 1..=horizon {
            if self.step(rng) {
                wrong = n - self.count_of_output(oid);
            }
            if wrong > 0 {
                last_wrong = Some(i);
            }
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::SchedulerDraw, horizon);
        }
        StabilizationReport { horizon, stabilized_at: consensus_reached(wrong, last_wrong, 0) }
    }

    /// Runs until the output multiset has not changed for `window`
    /// consecutive interactions, or `max_steps` elapse. Returns the step
    /// count at the last observed output change.
    pub fn run_until_silent(
        &mut self,
        window: u64,
        max_steps: u64,
        rng: &mut impl Rng,
    ) -> Option<u64> {
        let mut last_change = self.steps;
        let start = self.steps;
        while self.steps - start < max_steps {
            if self.step(rng) {
                last_change = self.steps;
            } else if self.steps - last_change >= window {
                return Some(last_change - start);
            }
        }
        None
    }

    /// Executes one **synchronous parallel round**: a uniformly random
    /// maximal matching of the population interacts simultaneously (every
    /// pair's transition is computed from the pre-round states).
    ///
    /// §8 observes that "interactions happen in parallel, so the total
    /// number of interactions may not be well correlated with wall-clock
    /// time; defining a useful notion of time is a challenge" — rounds of
    /// this engine are one natural such notion (≈ `n/2` sequential
    /// interactions each; experiment E16 measures the correspondence).
    ///
    /// Returns the number of pairs matched (⌊n/2⌋). [`steps`](Self::steps)
    /// advances by that amount.
    pub fn parallel_round(&mut self, rng: &mut impl Rng) -> u64 {
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::SchedulerDraw);
        }
        if Pr::ACTIVE {
            self.scratch.round_outputs.clear();
            self.scratch.round_outputs.extend_from_slice(&self.output_counts);
        }
        // Reuse the round buffers across calls; `take` them off `self` so
        // the matching loop below can still call `note_interaction`.
        let mut pending = std::mem::take(&mut self.scratch.round_pending);
        let mut next = std::mem::take(&mut self.scratch.round_next);
        pending.copy_from(&self.config);
        next.reset(self.rt.state_count());
        let mut pairs = 0u64;
        while pending.population() >= 2 {
            let m = pending.population();
            let p = pending.state_of_index(rng.gen_range(0..m));
            pending.remove(p, 1);
            let q = pending.state_of_index(rng.gen_range(0..m - 1));
            pending.remove(q, 1);
            let (p2, q2) = self.rt.transition(p, q);
            self.note_interaction((p, q), (p2, q2), 0);
            next.ensure_len(self.rt.state_count());
            next.add(p2, 1);
            next.add(q2, 1);
            pairs += 1;
        }
        // Odd population: the unmatched agent idles.
        if pending.population() == 1 {
            let leftover = pending.state_of_index(0);
            next.add(leftover, 1);
        }
        // The displaced config buffer becomes next round's `next`.
        self.scratch.round_next = std::mem::replace(&mut self.config, next);
        self.scratch.round_pending = pending;
        self.rebuild_output_counts();
        if Pr::ACTIVE && !hist_eq(&self.scratch.round_outputs, &self.output_counts) {
            self.probe.on_output_change(self.steps);
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::SchedulerDraw, pairs);
        }
        pairs
    }

    /// Closes the protocol's state space under `δ` from the current
    /// support and returns all *reactive* ordered state pairs — those with
    /// `δ(p, q) ≠ (p, q)`.
    ///
    /// Because the closure covers every state any future configuration can
    /// contain, the returned table stays valid for the rest of the run;
    /// it is the input to [`leap`](Self::leap).
    pub fn reactive_pairs(&mut self) -> Vec<(StateId, StateId)> {
        let seeds: Vec<StateId> = self.config.support().map(|(s, _)| s).collect();
        let total = self.rt.close_under_delta(&seeds);
        let mut reactive = Vec::new();
        for a in 0..total as u32 {
            for b in 0..total as u32 {
                let (p, q) = (StateId(a), StateId(b));
                if self.rt.transition(p, q) != (p, q) {
                    reactive.push((p, q));
                }
            }
        }
        self.config.ensure_len(self.rt.state_count());
        self.output_counts.resize(self.rt.output_count(), 0);
        reactive
    }

    /// Jumps directly to the next *effective* interaction (one that changes
    /// some state), skipping the no-ops in closed form: the number of
    /// skipped interactions is geometric with success probability
    /// `W / n(n−1)`, where `W` is the total weight of reactive pairs in the
    /// current configuration. The resulting process is distributed exactly
    /// like repeated [`step`](Self::step) — only faster when most
    /// interactions are no-ops (e.g. after effective convergence).
    ///
    /// Returns the number of interactions advanced (skips + 1), or `None`
    /// if the configuration is **quiescent** — no reactive pair is present,
    /// so no interaction can ever change anything again.
    ///
    /// `reactive` must come from [`reactive_pairs`](Self::reactive_pairs)
    /// on this simulation.
    pub fn leap(
        &mut self,
        reactive: &[(StateId, StateId)],
        rng: &mut impl Rng,
    ) -> Option<u64> {
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::SchedulerDraw);
        }
        let n = self.config.population();
        let total = (n * (n - 1)) as f64;
        // Per-pair weights under the current configuration, computed once
        // into a reused scratch buffer (they are read again for selection).
        let weights = &mut self.scratch.leap_weights;
        weights.clear();
        let mut weight = 0u64;
        for &(p, q) in reactive {
            let cp = self.config.count(p);
            let w = if p == q {
                cp * cp.saturating_sub(1)
            } else {
                cp * self.config.count(q)
            };
            weights.push(w);
            weight += w;
        }
        if weight == 0 {
            if Tr::ACTIVE {
                self.tracer.exit(SpanKind::SchedulerDraw, 0);
            }
            return None;
        }
        // Geometric skip: interactions up to and including the effective one.
        let p_eff = weight as f64 / total;
        let skip = if p_eff >= 1.0 {
            1
        } else {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            ((u.ln() / (1.0 - p_eff).ln()).ceil()).max(1.0) as u64
        };
        // Choose the effective pair proportionally to its weight, skipping
        // pairs absent from the current configuration.
        let mut x = rng.gen_range(0..weight);
        let mut chosen = reactive[0];
        for (i, &w) in self.scratch.leap_weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            if x < w {
                chosen = reactive[i];
                break;
            }
            x -= w;
        }
        let (p, q) = chosen;
        let (p2, q2) = self.rt.transition(p, q);
        debug_assert!((p2, q2) != (p, q), "reactive pair must change state");
        self.note_interaction((p, q), (p2, q2), skip - 1);
        self.apply_effective((p, q), (p2, q2));
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::SchedulerDraw, skip);
        }
        Some(skip)
    }

    /// Leaps until the configuration is quiescent (no interaction can ever
    /// change a state again — a *sound and complete* convergence detector
    /// for protocols that reach such configurations), returning the total
    /// interactions elapsed at the moment of the last state change.
    ///
    /// Returns `None` if quiescence was not reached within `max_leaps`
    /// effective interactions (the protocol may converge in outputs while
    /// churning states forever — e.g. leader-based protocols; use
    /// [`measure_stabilization`](Self::measure_stabilization) for those).
    pub fn run_to_quiescence(
        &mut self,
        max_leaps: u64,
        rng: &mut impl Rng,
    ) -> Option<u64> {
        let reactive = self.reactive_pairs();
        for _ in 0..max_leaps {
            if self.leap(&reactive, rng).is_none() {
                return Some(self.steps);
            }
        }
        // One more probe: maybe the last leap reached quiescence.
        if self.leap(&reactive, rng).is_none() {
            return Some(self.steps);
        }
        None
    }

    /// Runs matching rounds ([`parallel_round`](Self::parallel_round))
    /// until every agent outputs `expected` and keeps doing so through
    /// `max_rounds`; returns the first round after which the output was
    /// continuously correct, or `None`.
    ///
    /// "Rounds" here measure the **paper's parallel time** (§3.2: `n`
    /// interactions ≈ one time unit; a round matches each agent once) — a
    /// modelling notion, not thread-level parallelism. For running many
    /// independent trials across OS threads see [`crate::ensemble`].
    #[doc(alias = "measure_stabilization_parallel")]
    pub fn measure_stabilization_rounds(
        &mut self,
        expected: &P::Output,
        max_rounds: u64,
        rng: &mut impl Rng,
    ) -> Option<u64> {
        let n = self.population();
        let oid = self.output_id(expected);
        let mut wrong = n - self.count_of_output(oid);
        let mut last_wrong: Option<u64> = if wrong > 0 { Some(0) } else { None };
        for round in 1..=max_rounds {
            self.parallel_round(rng);
            wrong = n - self.count_of_output(oid);
            if wrong > 0 {
                last_wrong = Some(round);
            }
        }
        consensus_reached(wrong, last_wrong, 0)
    }

    /// Deprecated name of
    /// [`measure_stabilization_rounds`](Self::measure_stabilization_rounds).
    #[deprecated(
        since = "0.1.0",
        note = "renamed to `measure_stabilization_rounds`: \"parallel\" meant the \
                paper's parallel-time rounds (§3.2), not thread-level parallelism \
                (for that, see `pp_core::ensemble`)"
    )]
    pub fn measure_stabilization_parallel(
        &mut self,
        expected: &P::Output,
        max_rounds: u64,
        rng: &mut impl Rng,
    ) -> Option<u64> {
        self.measure_stabilization_rounds(expected, max_rounds, rng)
    }
}

/// Zero-padded equality of two output histograms (lengths may differ when
/// new outputs were interned mid-round).
fn hist_eq(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().max(b.len());
    (0..n).all(|i| a.get(i).copied().unwrap_or(0) == b.get(i).copied().unwrap_or(0))
}

/// Per-agent simulation driven by an arbitrary [`PairSampler`]; required for
/// restricted interaction graphs (§5) where agent identity matters.
///
/// Supports crash faults: a crashed agent keeps its slot (the sampler's
/// population is fixed) but never interacts again — matching §8's "if an
/// agent dies, the interactions between the remaining agents are
/// unaffected". Sampled pairs touching a crashed agent are rejected and
/// redrawn; output accounting ([`consensus_output`](Self::consensus_output),
/// [`output_histogram`](Self::output_histogram),
/// [`measure_stabilization`](Self::measure_stabilization)) covers live
/// agents only.
///
/// Like [`Simulation`], the engine carries a [`Probe`] type parameter
/// (default [`NoProbe`]) and a [`Tracer`] type parameter (default
/// [`NoTracer`]); attach them with
/// [`with_probe`](AgentSimulation::with_probe) /
/// [`with_tracer`](AgentSimulation::with_tracer).
#[derive(Debug)]
pub struct AgentSimulation<P: Protocol, S, Pr = NoProbe, Tr = NoTracer> {
    pub(crate) rt: DenseRuntime<P>,
    /// Struct-of-arrays agent store: states plus packed crash/coin bitsets
    /// (see [`AgentStore`]).
    pub(crate) agents: AgentStore,
    pub(crate) sampler: S,
    pub(crate) steps: u64,
    pub(crate) effective_steps: u64,
    /// Whether the schedule is known to be starved (no live pair exists).
    /// Maintained by [`crash_agent`](Self::crash_agent) through the
    /// sampler's structural liveness accounting
    /// ([`PairSampler::live_pairs`] / [`PairSampler::mask_live`]), so a
    /// starved step fails in `O(1)` without touching the RNG.
    pub(crate) starved: bool,
    pub(crate) probe: Pr,
    pub(crate) tracer: Tr,
    pub(crate) batch: AgentBatchScratch,
}

/// Resampling budget when rejecting pairs that touch crashed agents, for
/// samplers that cannot account live pairs structurally
/// ([`PairSampler::live_pairs`] returns `None`). On any graph with at least
/// one live edge the probability of exhausting this is astronomically small;
/// exhaustion is therefore reported as
/// [`PopulationError::StarvedSchedule`].
pub(crate) const MAX_PAIR_RESAMPLES: u32 = 100_000;

/// One executed interaction: the sampled edge `(u, v)` plus the agents'
/// `(before, after)` state pairs.
pub type StepTransition = ((u32, u32), (StateId, StateId), (StateId, StateId));

impl<P: Protocol, S: PairSampler> AgentSimulation<P, S> {
    /// Creates a simulation assigning `inputs[i]` to agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the sampler's population size
    /// or is smaller than 2.
    pub fn from_inputs(protocol: P, inputs: &[P::Input], sampler: S) -> Self {
        assert!(inputs.len() >= 2, "population must have at least 2 agents");
        assert_eq!(
            inputs.len(),
            sampler.population(),
            "input count must match sampler population"
        );
        let mut rt = DenseRuntime::new(protocol);
        let agents: AgentConfig = inputs.iter().map(|x| rt.intern_input(x)).collect();
        Self {
            rt,
            agents: AgentStore::new(agents),
            sampler,
            steps: 0,
            effective_steps: 0,
            starved: false,
            probe: NoProbe,
            tracer: NoTracer,
            batch: AgentBatchScratch::default(),
        }
    }
}

impl<P: Protocol, S: PairSampler, Pr: Probe, Tr: Tracer> AgentSimulation<P, S, Pr, Tr> {
    /// Attaches a probe (see [`crate::observe`]); its `on_attach` hook
    /// receives the current *live* state and output histograms. Any
    /// previously attached probe is dropped; the tracer is carried over.
    pub fn with_probe<Pr2: Probe>(self, mut probe: Pr2) -> AgentSimulation<P, S, Pr2, Tr> {
        if Pr2::ACTIVE {
            let (occ, outs) = self.live_histograms();
            probe.on_attach(&Snapshot { step: self.steps, occupancy: &occ, outputs: &outs });
        }
        AgentSimulation {
            rt: self.rt,
            agents: self.agents,
            sampler: self.sampler,
            steps: self.steps,
            effective_steps: self.effective_steps,
            starved: self.starved,
            probe,
            tracer: self.tracer,
            batch: self.batch,
        }
    }

    /// Attaches a tracer (see [`crate::trace`]); the probe is carried over.
    /// Any previously attached tracer is dropped.
    pub fn with_tracer<Tr2: Tracer>(self, tracer: Tr2) -> AgentSimulation<P, S, Pr, Tr2> {
        AgentSimulation {
            rt: self.rt,
            agents: self.agents,
            sampler: self.sampler,
            steps: self.steps,
            effective_steps: self.effective_steps,
            starved: self.starved,
            probe: self.probe,
            tracer,
            batch: self.batch,
        }
    }

    /// The attached probe.
    pub fn probe(&self) -> &Pr {
        &self.probe
    }

    /// Mutable access to the attached probe.
    pub fn probe_mut(&mut self) -> &mut Pr {
        &mut self.probe
    }

    /// Consumes the simulation and returns the probe.
    pub fn into_probe(self) -> Pr {
        self.probe
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &Tr {
        &self.tracer
    }

    /// Mutable access to the attached tracer.
    pub fn tracer_mut(&mut self) -> &mut Tr {
        &mut self.tracer
    }

    /// Consumes the simulation and returns the tracer.
    pub fn into_tracer(self) -> Tr {
        self.tracer
    }

    /// Histograms of *live* agents per state id and per output id.
    fn live_histograms(&self) -> (Vec<u64>, Vec<u64>) {
        let mut occ = vec![0u64; self.rt.state_count()];
        let mut outs = vec![0u64; self.rt.output_count()];
        for (i, s) in self.agents.iter().enumerate() {
            if self.agents.is_crashed(i as u32) {
                continue;
            }
            occ[s.index()] += 1;
            outs[self.rt.output_of(s).index()] += 1;
        }
        (occ, outs)
    }

    /// Notifies the probe (and the tracer, as an instant event) that a fault
    /// plan just damaged the configuration.
    pub(crate) fn probe_fault_burst(&mut self, injected: u64) {
        if Tr::ACTIVE {
            self.tracer.instant(SpanKind::FaultBurst, injected);
        }
        if Pr::ACTIVE {
            let (occ, outs) = self.live_histograms();
            self.probe.on_fault_burst(
                injected,
                &Snapshot { step: self.steps, occupancy: &occ, outputs: &outs },
            );
        }
    }

    /// The single accounting path for the agent engine, mirroring the count
    /// engine's: bumps `steps`/`effective_steps` and feeds the probe.
    #[inline]
    pub(crate) fn note_interaction(
        &mut self,
        before: (StateId, StateId),
        after: (StateId, StateId),
    ) {
        self.steps += 1;
        let effective = after != before;
        self.effective_steps += u64::from(effective);
        if Pr::ACTIVE {
            let ev = InteractionEvent {
                step: self.steps,
                noops_skipped: 0,
                before,
                after,
                outputs_before: (self.rt.output_of(before.0), self.rt.output_of(before.1)),
                outputs_after: (self.rt.output_of(after.0), self.rt.output_of(after.1)),
                effective,
            };
            let changed = ev.output_multiset_changed();
            self.probe.on_interaction(&ev);
            if changed {
                self.probe.on_output_change(self.steps);
            }
        }
    }

    /// Population size (including crashed agents, which keep their slot).
    pub fn population(&self) -> usize {
        self.agents.population()
    }

    /// Number of agents that have not crashed.
    pub fn live_population(&self) -> usize {
        self.agents.live()
    }

    /// Whether agent `a` has crashed.
    pub fn is_crashed(&self, a: u32) -> bool {
        self.agents.is_crashed(a)
    }

    /// Permanently stops agent `a` from interacting (crash fault, §8).
    /// Returns `false` (and does nothing) if the agent is already crashed or
    /// if crashing it would leave fewer than 2 live agents.
    ///
    /// After a successful crash the sampler is re-masked / the starvation
    /// flag refreshed, so subsequent steps either draw live pairs directly
    /// or fail fast with [`PopulationError::StarvedSchedule`].
    pub fn crash_agent(&mut self, a: u32) -> bool {
        if !self.agents.crash(a) {
            return false;
        }
        self.refresh_liveness();
        true
    }

    /// Re-derives the starvation flag (and any sampler-side live mask) from
    /// the current crash set. `O(n + m)` per call; called once per crash,
    /// not per draw.
    fn refresh_liveness(&mut self) {
        let agents = &self.agents;
        let is_live = |a: u32| !agents.is_crashed(a);
        self.starved = if agents.live() < 2 {
            true
        } else {
            match self.sampler.mask_live(&is_live) {
                Some(k) => k == 0,
                // Sampler cannot precondition draws: fall back to the
                // structural count, else to capped rejection at draw time.
                None => self.sampler.live_pairs(&is_live) == Some(0),
            }
        };
    }

    /// Crashes one uniformly random live agent; `None` if the live
    /// population is already at 2.
    pub fn crash_random_live(&mut self, rng: &mut impl RngCore) -> Option<u32> {
        if self.agents.live() <= 2 {
            return None;
        }
        let a = self.random_live_agent(rng);
        self.crash_agent(a).then_some(a)
    }

    /// A uniformly random live agent.
    ///
    /// # Panics
    ///
    /// Panics if every agent has crashed (impossible through the public
    /// API, which keeps at least 2 live).
    pub fn random_live_agent(&mut self, rng: &mut impl RngCore) -> u32 {
        assert!(self.agents.live() > 0, "no live agents");
        let mut k = rng.gen_range(0..self.agents.live());
        for i in 0..self.agents.population() as u32 {
            if !self.agents.is_crashed(i) {
                if k == 0 {
                    return i;
                }
                k -= 1;
            }
        }
        unreachable!("live count out of sync with crash mask")
    }

    /// Overwrites the state of live agent `a` (transient corruption / churn),
    /// returning the state it was in.
    ///
    /// # Panics
    ///
    /// Panics if the agent has crashed — a dead sensor's memory is not part
    /// of the computation.
    pub fn set_agent_state(&mut self, a: u32, s: &P::State) -> P::State {
        assert!(!self.agents.is_crashed(a), "cannot rewrite a crashed agent");
        let old = self.agents.state(a);
        let new = self.rt.intern(s.clone());
        self.agents.set_state(a, new);
        self.rt.state(old).clone()
    }

    /// A uniformly random state among those the runtime has interned so far.
    pub fn random_known_state(&mut self, rng: &mut impl RngCore) -> P::State {
        let k = self.rt.state_count();
        assert!(k > 0, "no states interned yet");
        self.rt.state(StateId(rng.gen_range(0..k as u32))).clone()
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Interactions that changed at least one agent's state (§8's candidate
    /// energy measure) — mirrors [`Simulation::effective_steps`], so the two
    /// engines account energy identically.
    pub fn effective_steps(&self) -> u64 {
        self.effective_steps
    }

    /// Current state of agent `a`.
    pub fn state_of(&self, a: u32) -> &P::State {
        self.rt.state(self.agents.state(a))
    }

    /// Current output of agent `a`.
    pub fn output_of(&self, a: u32) -> &P::Output {
        self.rt.output_value(self.rt.output_of(self.agents.state(a)))
    }

    /// The per-agent configuration (the state column of the store).
    pub fn agents(&self) -> &AgentConfig {
        self.agents.states()
    }

    /// The struct-of-arrays agent store (states + crash/coin bitsets).
    pub fn store(&self) -> &AgentStore {
        &self.agents
    }

    /// Snapshots the live agents into a spatial occupancy field (one pass
    /// over the SoA state column; crashed agents are skipped). See
    /// [`OccupancyFieldProbe`](crate::observe::OccupancyFieldProbe) for why
    /// spatial aggregation is pull-based rather than a `Probe` hook.
    pub fn record_field(&self, field: &mut crate::observe::OccupancyFieldProbe) {
        field.record(
            self.steps,
            self.agents.iter().enumerate().filter_map(|(i, s)| {
                let a = i as u32;
                (!self.agents.is_crashed(a)).then_some((a, s))
            }),
        );
    }

    /// The dense runtime.
    pub fn runtime(&self) -> &DenseRuntime<P> {
        &self.rt
    }

    /// Draws sampler edges until one joins two live agents, or gives up
    /// after `cap` rejections (`None` = starved: no live pair was found).
    ///
    /// When the sampler is masked (see [`PairSampler::mask_live`]) the first
    /// draw is already live, so the loop exits on its first iteration.
    fn sample_live_pair(&mut self, rng: &mut impl RngCore, cap: u32) -> Option<(u32, u32)> {
        if self.starved || self.agents.live() < 2 {
            return None;
        }
        for _ in 0..cap {
            let (u, v) = self.sampler.sample(rng);
            if !self.agents.is_crashed(u) && !self.agents.is_crashed(v) {
                return Some((u, v));
            }
        }
        None
    }

    /// Executes one interaction along a sampled edge between live agents;
    /// returns the edge.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is starved; use
    /// [`try_step_transitions`](Self::try_step_transitions) to handle
    /// starvation as a structured error instead.
    pub fn step(&mut self, rng: &mut impl RngCore) -> (u32, u32) {
        let (edge, _, _) =
            self.try_step_transitions(rng).unwrap_or_else(|e| panic!("{e}"));
        edge
    }

    /// Executes one interaction between live agents, returning the edge and
    /// the `(before, after)` state pairs, or
    /// [`PopulationError::StarvedSchedule`] if no pair of live agents can
    /// interact.
    ///
    /// Starvation is detected structurally where the sampler supports it
    /// (the flag is refreshed on every crash), in which case this fails in
    /// `O(1)` **without consuming any randomness**; otherwise a capped
    /// rejection loop runs first.
    pub fn try_step_transitions(
        &mut self,
        rng: &mut impl RngCore,
    ) -> Result<StepTransition, PopulationError> {
        let (u, v) = self
            .sample_live_pair(rng, MAX_PAIR_RESAMPLES)
            .ok_or(PopulationError::StarvedSchedule { live: self.agents.live() as u64 })?;
        let (p, q) = (self.agents.state(u), self.agents.state(v));
        let r = self.rt.transition(p, q);
        self.agents.apply((u, v), r);
        self.note_interaction((p, q), r);
        Ok(((u, v), (p, q), r))
    }

    /// [`try_step_transitions`](Self::try_step_transitions) with starvation
    /// flattened to `None`.
    pub fn step_transitions(&mut self, rng: &mut impl RngCore) -> Option<StepTransition> {
        self.try_step_transitions(rng).ok()
    }

    /// The current synthesized coin of agent `a` (see [`CoinProtocol`]):
    /// `None` until the agent's first [`step_coined`](Self::step_coined)
    /// interaction, and again after
    /// [`clear_coins`](Self::clear_coins) / adversarial initialization.
    pub fn coin_of(&self, a: u32) -> Option<bool> {
        self.agents.coin(a)
    }

    /// Resets every agent's synthesized coin to `None`. The adversary of
    /// self-stabilization ([`AdversarialInit`](crate::faults::AdversarialInit))
    /// calls this so a protocol cannot smuggle clean state through the coin
    /// side channel.
    pub fn clear_coins(&mut self) {
        self.agents.clear_coins();
    }

    /// Like [`step_transitions`](Self::step_transitions) but for a
    /// [`CoinProtocol`]: both participants' current coins are passed to
    /// [`delta_coined`](CoinProtocol::delta_coined), then both coins are
    /// refreshed from the schedule's RNG (initiator first, then responder),
    /// so each coin is used in at most one interaction.
    pub fn step_coined(&mut self, rng: &mut impl RngCore) -> Option<StepTransition>
    where
        P: CoinProtocol,
    {
        let (u, v) = self.sample_live_pair(rng, MAX_PAIR_RESAMPLES)?;
        let (p, q) = (self.agents.state(u), self.agents.state(v));
        let coins = (self.agents.coin(u), self.agents.coin(v));
        let r = self.rt.transition_coined(p, q, coins);
        self.agents.apply((u, v), r);
        let cu = rng.gen_bool(0.5);
        self.agents.set_coin(u, cu);
        let cv = rng.gen_bool(0.5);
        self.agents.set_coin(v, cv);
        self.note_interaction((p, q), r);
        Some(((u, v), (p, q), r))
    }

    /// Replaces the state of every **live** agent: live agent number `i` (in
    /// slot order, counting live agents only) gets `f(i)`. Crashed agents
    /// keep their (dead) memory. Used by
    /// [`AdversarialInit`](crate::faults::AdversarialInit); also clears all
    /// synthesized coins.
    pub fn overwrite_live_states(&mut self, mut f: impl FnMut(u64) -> P::State) {
        let mut i = 0u64;
        for a in 0..self.agents.population() as u32 {
            if self.agents.is_crashed(a) {
                continue;
            }
            let id = self.rt.intern(f(i));
            self.agents.set_state(a, id);
            i += 1;
        }
        self.clear_coins();
    }

    /// Runs `steps` interactions.
    pub fn run(&mut self, steps: u64, rng: &mut impl RngCore) {
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::SchedulerDraw);
        }
        for _ in 0..steps {
            self.step(rng);
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::SchedulerDraw, steps);
        }
    }

    /// If every *live* agent currently has the same output, returns it.
    pub fn consensus_output(&self) -> Option<&P::Output> {
        let mut first: Option<OutputId> = None;
        for (i, s) in self.agents.iter().enumerate() {
            if self.agents.is_crashed(i as u32) {
                continue;
            }
            let o = self.rt.output_of(s);
            match first {
                None => first = Some(o),
                Some(f) if f != o => return None,
                Some(_) => {}
            }
        }
        first.map(|o| self.rt.output_value(o))
    }

    /// The multiset of current *live* outputs as `(output, count)` pairs.
    pub fn output_histogram(&self) -> Vec<(P::Output, u64)> {
        let mut hist: Vec<(P::Output, u64)> = Vec::new();
        for (i, s) in self.agents.iter().enumerate() {
            if self.agents.is_crashed(i as u32) {
                continue;
            }
            let o = self.rt.output_value(self.rt.output_of(s)).clone();
            match hist.iter_mut().find(|(oo, _)| *oo == o) {
                Some((_, c)) => *c += 1,
                None => hist.push((o, 1)),
            }
        }
        hist
    }

    /// Number of live agents whose current output differs from `expected`.
    pub fn wrong_output_count(&self, expected: &P::Output) -> u64 {
        self.agents
            .iter()
            .enumerate()
            .filter(|&(i, s)| {
                !self.agents.is_crashed(i as u32)
                    && self.rt.output_value(self.rt.output_of(s)) != expected
            })
            .count() as u64
    }

    /// Runs `horizon` interactions and reports when the output assignment
    /// last became (and stayed) `expected` on every agent.
    pub fn measure_stabilization(
        &mut self,
        expected: &P::Output,
        horizon: u64,
        rng: &mut impl RngCore,
    ) -> StabilizationReport {
        let mut wrong = self.wrong_output_count(expected);
        let mut last_wrong: Option<u64> = if wrong == 0 { None } else { Some(0) };
        let start = self.steps;
        if Tr::ACTIVE {
            self.tracer.enter(SpanKind::SchedulerDraw);
        }
        for _ in 0..horizon {
            if let Some((_, (p, q), (p2, q2))) = self.step_transitions(rng) {
                for (old, new) in [(p, p2), (q, q2)] {
                    if old == new {
                        continue;
                    }
                    let was_ok = self.rt.output_value(self.rt.output_of(old)) == expected;
                    let is_ok = self.rt.output_value(self.rt.output_of(new)) == expected;
                    match (was_ok, is_ok) {
                        (true, false) => wrong += 1,
                        (false, true) => wrong -= 1,
                        _ => {}
                    }
                }
            }
            if wrong > 0 {
                last_wrong = Some(self.steps - start);
            }
        }
        if Tr::ACTIVE {
            self.tracer.exit(SpanKind::SchedulerDraw, horizon);
        }
        StabilizationReport { horizon, stabilized_at: consensus_reached(wrong, last_wrong, 0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FnProtocol;
    use crate::scheduler::{EdgeListScheduler, UniformPairScheduler};

    fn epidemic() -> impl Protocol<State = bool, Input = bool, Output = bool> {
        FnProtocol::new(
            |&b: &bool| b,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| (p || q, p || q),
        )
    }

    fn count_to_five() -> impl Protocol<State = u8, Input = bool, Output = bool> {
        FnProtocol::new(
            |&b: &bool| u8::from(b),
            |&q: &u8| q == 5,
            |&p: &u8, &q: &u8| if p + q >= 5 { (5, 5) } else { (p + q, 0) },
        )
    }

    #[test]
    fn epidemic_reaches_consensus() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 63)]);
        let mut rng = seeded_rng(11);
        let t = sim.run_until_consensus(&true, 100_000, &mut rng);
        assert!(t.is_some());
        assert_eq!(sim.consensus_output(), Some(&true));
    }

    #[test]
    fn count_to_five_positive_and_negative() {
        let mut rng = seeded_rng(5);
        let mut pos = Simulation::from_counts(count_to_five(), [(true, 5), (false, 20)]);
        let rep = pos.measure_stabilization(&true, 200_000, &mut rng);
        assert!(rep.converged(), "5 hot birds must alert everyone");

        let mut neg = Simulation::from_counts(count_to_five(), [(true, 4), (false, 21)]);
        let rep = neg.measure_stabilization(&false, 200_000, &mut rng);
        assert!(rep.converged(), "4 hot birds must never alert");
        // The alert state is unreachable with only 4 ones: outputs stay false
        // from the start.
        assert_eq!(rep.stabilized_at, Some(0));
    }

    #[test]
    fn stabilization_report_tail() {
        let r = StabilizationReport { horizon: 100, stabilized_at: Some(40) };
        assert!(r.converged());
        assert_eq!(r.silent_tail(), 60);
        let r = StabilizationReport { horizon: 100, stabilized_at: None };
        assert!(!r.converged());
        assert_eq!(r.silent_tail(), 0);
    }

    #[test]
    fn population_is_preserved() {
        let mut sim = Simulation::from_counts(count_to_five(), [(true, 7), (false, 9)]);
        let mut rng = seeded_rng(3);
        sim.run(10_000, &mut rng);
        assert_eq!(sim.population(), 16);
        let total: u64 = sim.output_histogram().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn run_until_silent_detects_quiescence() {
        // Epidemic quiesces (outputs stop changing) quickly.
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 15)]);
        let mut rng = seeded_rng(9);
        let t = sim.run_until_silent(5_000, 1_000_000, &mut rng);
        assert!(t.is_some());
        assert_eq!(sim.consensus_output(), Some(&true));
    }

    #[test]
    fn agent_simulation_complete_graph_matches_count_semantics() {
        let n = 32;
        let inputs: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let mut sim =
            AgentSimulation::from_inputs(epidemic(), &inputs, UniformPairScheduler::new(n));
        let mut rng = seeded_rng(21);
        let rep = sim.measure_stabilization(&true, 50_000, &mut rng);
        assert!(rep.converged());
        assert_eq!(sim.consensus_output(), Some(&true));
    }

    #[test]
    fn agent_simulation_on_directed_ring() {
        // Directed ring: 0→1→2→...→n-1→0. The epidemic still spreads.
        let n = 16u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let inputs: Vec<bool> = (0..n).map(|i| i == 3).collect();
        let mut sim = AgentSimulation::from_inputs(
            epidemic(),
            &inputs,
            EdgeListScheduler::new(n as usize, edges),
        );
        let mut rng = seeded_rng(2);
        let rep = sim.measure_stabilization(&true, 50_000, &mut rng);
        assert!(rep.converged());
    }

    #[test]
    fn from_states_allows_designated_leader() {
        // Leader election starting from explicit states: one leader already.
        let le = FnProtocol::new(
            |&(): &()| true,
            |&q: &bool| q,
            |&p: &bool, &q: &bool| if p && q { (true, false) } else { (p, q) },
        );
        let mut sim = Simulation::from_states(le, [(true, 1), (false, 9)]);
        let mut rng = seeded_rng(1);
        sim.run(1000, &mut rng);
        assert_eq!(sim.count_of_state(&true), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn tiny_population_rejected() {
        let _ = Simulation::from_counts(epidemic(), [(true, 1)]);
    }

    #[test]
    fn leap_skips_noops_but_matches_step_distribution() {
        // Epidemic hitting time has the closed form
        // E[T] = Σ_{k=1}^{n−1} n(n−1)/(2k(n−k)); the leaping engine must
        // reproduce it (it is the same Markov chain, just fast-forwarded).
        let n = 24u64;
        let expect: f64 = (1..n)
            .map(|k| (n * (n - 1)) as f64 / (2 * k * (n - k)) as f64)
            .sum();
        let trials: u64 = if cfg!(debug_assertions) { 800 } else { 4000 };
        let mut total = 0u64;
        for seed in 0..trials {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            let t = sim.run_to_quiescence(10_000, &mut rng).expect("epidemic quiesces");
            total += t;
        }
        let mean = total as f64 / trials as f64;
        let ratio = mean / expect;
        let band = if cfg!(debug_assertions) { 0.85..1.15 } else { 0.93..1.07 };
        assert!(band.contains(&ratio), "mean {mean:.1} vs exact {expect:.1}");
    }

    #[test]
    fn quiescence_is_detected_immediately_when_inert() {
        let mut sim = Simulation::from_counts(epidemic(), [(false, 10)]);
        let mut rng = seeded_rng(1);
        assert_eq!(sim.run_to_quiescence(10, &mut rng), Some(0));
    }

    #[test]
    fn leap_counts_interactions_and_effective_steps() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 63)]);
        let mut rng = seeded_rng(2);
        let reactive = sim.reactive_pairs();
        let mut effective = 0u64;
        while sim.leap(&reactive, &mut rng).is_some() {
            effective += 1;
        }
        // Exactly n−1 = 63 effective interactions infect everyone.
        assert_eq!(effective, 63);
        assert_eq!(sim.effective_steps(), 63);
        assert!(sim.steps() >= 63);
        assert_eq!(sim.consensus_output(), Some(&true));
    }

    #[test]
    fn count_to_five_positive_case_quiesces() {
        let mut sim = Simulation::from_counts(count_to_five(), [(true, 6), (false, 14)]);
        let mut rng = seeded_rng(3);
        let t = sim.run_to_quiescence(100_000, &mut rng);
        assert!(t.is_some(), "all-alert configuration is quiescent");
        assert_eq!(sim.consensus_output(), Some(&true));
        // The negative case shuffles tokens forever ((0, t) → (t, 0) is a
        // state change): no quiescence.
        let mut sim = Simulation::from_counts(count_to_five(), [(true, 3), (false, 7)]);
        assert_eq!(sim.run_to_quiescence(2_000, &mut rng), None);
    }

    #[test]
    fn parallel_round_matches_everyone_once() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 9)]);
        let mut rng = seeded_rng(14);
        let pairs = sim.parallel_round(&mut rng);
        assert_eq!(pairs, 5);
        assert_eq!(sim.steps(), 5);
        assert_eq!(sim.population(), 10);
        // Odd population: one agent idles.
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 10)]);
        assert_eq!(sim.parallel_round(&mut rng), 5);
        assert_eq!(sim.population(), 11);
    }

    #[test]
    fn parallel_epidemic_converges_in_logarithmic_rounds() {
        // One round doubles the infection at best; expect O(log n) rounds.
        let n = 1024u64;
        let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
        let mut rng = seeded_rng(15);
        let rounds = sim
            .measure_stabilization_rounds(&true, 200, &mut rng)
            .expect("epidemic converges");
        assert!(rounds >= 10, "needs at least log2(n) rounds, got {rounds}");
        assert!(rounds <= 60, "should be O(log n) rounds, got {rounds}");
    }

    #[test]
    fn parallel_round_applies_transitions_from_pre_round_states() {
        // Count-to-5 with exactly two 1-tokens in a 2-agent population: the
        // single matched pair merges them whichever orientation is drawn.
        let mut sim = Simulation::from_counts(count_to_five(), [(true, 2)]);
        let mut rng = seeded_rng(16);
        sim.parallel_round(&mut rng);
        assert_eq!(sim.count_of_state(&2), 1);
        assert_eq!(sim.count_of_state(&0), 1);
    }

    #[test]
    fn steps_counter_advances() {
        let mut sim = Simulation::from_counts(epidemic(), [(true, 2), (false, 2)]);
        let mut rng = seeded_rng(0);
        sim.run(123, &mut rng);
        assert_eq!(sim.steps(), 123);
    }
}
