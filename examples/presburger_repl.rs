//! Compile any Presburger predicate to a population protocol and check it.
//!
//! Pass a formula and symbol counts:
//!
//! ```text
//! cargo run --example presburger_repl -- "ones > zeros \/ ones = 0 mod 3" ones=7 zeros=4
//! ```
//!
//! The example parses the formula, eliminates quantifiers (Cooper),
//! compiles to Lemma 5 atoms, verifies the protocol *exhaustively* for all
//! small inputs with the exact analyzer, then simulates the requested
//! instance under conjugating-automaton random pairing.

use std::env;

use population_protocols::analysis::verify::verify_predicate;
use population_protocols::core::prelude::*;
use population_protocols::presburger::{compile::compile_parsed, eliminate_quantifiers, parse};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let (src, assignments) = if args.is_empty() {
        (
            "exists q. hot = 2 * q /\\ hot + normal > 4".to_string(),
            vec![("hot".to_string(), 6u64), ("normal".to_string(), 9u64)],
        )
    } else {
        let src = args[0].clone();
        let mut asg = Vec::new();
        for a in &args[1..] {
            let (name, val) = a.split_once('=').expect("use name=count");
            asg.push((name.to_string(), val.parse::<u64>().expect("count must be a number")));
        }
        (src, asg)
    };

    println!("formula:   {src}");
    let parsed = parse(&src).expect("formula parses");
    println!("variables: {:?}", parsed.vars);

    let qf = eliminate_quantifiers(&parsed.formula);
    println!("quantifier-free form (Cooper/Theorem 4):\n  {qf}");

    let protocol = compile_parsed(&parsed).expect("formula compiles");
    println!(
        "compiled to {} Lemma 5 atom protocol(s) + Boolean skeleton",
        protocol.atoms().len()
    );

    // Exhaustive verification for all inputs of size ≤ 5 (Theorem 6 style).
    let k = parsed.vars.len();
    println!("\nexact verification over all populations of size ≤ 5:");
    let mut verified = 0u32;
    let mut counts = vec![0u64; k];
    let mut ok = true;
    loop {
        let n: u64 = counts.iter().sum();
        if (2..=5).contains(&n) {
            let expected = protocol.eval(&counts);
            let report = verify_predicate(
                protocol.clone(),
                counts.iter().enumerate().map(|(i, &c)| (i, c)),
                expected,
            );
            if !report.holds() {
                println!("  FAILED at {counts:?}: {:?}", report.verdict);
                ok = false;
            }
            verified += 1;
        }
        // Odometer over count vectors with entries ≤ 5.
        let mut i = 0;
        loop {
            if i == k {
                break;
            }
            counts[i] += 1;
            if counts[i] <= 5 {
                break;
            }
            counts[i] = 0;
            i += 1;
        }
        if i == k {
            break;
        }
    }
    println!("  {verified} input(s) verified exhaustively: {}", if ok { "all stable ✓" } else { "FAILURES" });

    // Simulate the requested instance.
    let mut input_counts = vec![0u64; k];
    for (name, v) in &assignments {
        match parsed.index_of(name) {
            Some(i) => input_counts[i] = *v,
            None => println!("note: variable {name} does not occur freely; ignored"),
        }
    }
    let expected = protocol.eval(&input_counts);
    println!("\nsimulating {input_counts:?} (n = {}):", input_counts.iter().sum::<u64>());
    println!("ground truth: {expected}");
    let mut sim = Simulation::from_counts(
        protocol,
        input_counts.iter().enumerate().map(|(i, &c)| (i, c)),
    );
    let mut rng = seeded_rng(7);
    let report = sim.measure_stabilization(&expected, 5_000_000, &mut rng);
    match report.stabilized_at {
        Some(t) => println!("population stabilized to {expected} after {t} interactions"),
        None => println!("population had not stabilized within {} interactions", report.horizon),
    }
}
