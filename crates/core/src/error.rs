//! Error types shared across the population-protocol crates.

use std::error::Error;
use std::fmt;

/// Errors arising when constructing or running populations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PopulationError {
    /// A population must contain at least two agents for any interaction to
    /// be possible.
    PopulationTooSmall {
        /// Number of agents requested.
        n: usize,
    },
    /// The interaction graph contains no edges, so no interaction can ever
    /// occur.
    NoEdges,
    /// An edge refers to an agent index outside `0..n`.
    EdgeOutOfRange {
        /// The offending agent index.
        agent: u32,
        /// Population size.
        n: usize,
    },
    /// An edge is a self-loop; the interaction relation is irreflexive.
    SelfLoop {
        /// The agent with a self-edge.
        agent: u32,
    },
    /// A requested input is not representable under the chosen encoding
    /// convention (e.g. a symbol-count tuple whose sum differs from `n`).
    UnrepresentableInput {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A protocol exceeded the configured bound on distinct states; the
    /// model requires a finite state set, so this indicates a protocol bug.
    StateSpaceExceeded {
        /// The bound that was exceeded.
        bound: usize,
    },
    /// The schedule is starved: no edge of the interaction graph joins two
    /// live agents (e.g. both endpoints of every edge crashed), so no
    /// interaction can ever occur again.
    StarvedSchedule {
        /// Number of live agents at the time of starvation.
        live: u64,
    },
}

impl fmt::Display for PopulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PopulationTooSmall { n } => {
                write!(f, "population of size {n} is too small (need at least 2 agents)")
            }
            Self::NoEdges => write!(f, "interaction graph has no edges"),
            Self::EdgeOutOfRange { agent, n } => {
                write!(f, "edge endpoint {agent} out of range for population of size {n}")
            }
            Self::SelfLoop { agent } => {
                write!(f, "self-loop on agent {agent}; interaction relation is irreflexive")
            }
            Self::UnrepresentableInput { reason } => {
                write!(f, "input not representable under encoding convention: {reason}")
            }
            Self::StateSpaceExceeded { bound } => {
                write!(f, "protocol produced more than {bound} distinct states")
            }
            Self::StarvedSchedule { live } => {
                write!(
                    f,
                    "schedule is starved: no edge joins two live agents ({live} live)"
                )
            }
        }
    }
}

impl Error for PopulationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            PopulationError::PopulationTooSmall { n: 1 },
            PopulationError::NoEdges,
            PopulationError::EdgeOutOfRange { agent: 9, n: 4 },
            PopulationError::SelfLoop { agent: 2 },
            PopulationError::UnrepresentableInput { reason: "sum mismatch".into() },
            PopulationError::StateSpaceExceeded { bound: 10 },
            PopulationError::StarvedSchedule { live: 2 },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(PopulationError::NoEdges);
        assert!(e.source().is_none());
    }
}
