//! A zero-dependency HTTP/1.1 layer: hand-rolled request parser and a
//! fixed thread-pool of blocking accept loops over one shared listener.
//!
//! The surface is deliberately tiny — enough HTTP to serve JSON to `curl`
//! and the bundled [`client`](crate::client), nothing more: one request
//! per connection (`Connection: close`), `Content-Length` bodies only, a
//! 16 KiB header cap, and a configurable body cap. Every handler runs
//! under `catch_unwind`, so a panic becomes a structured 500 instead of a
//! dead worker.
//!
//! # Routes
//!
//! | Method | Path            | Body / response                               |
//! |--------|-----------------|-----------------------------------------------|
//! | GET    | `/healthz`      | liveness probe                                |
//! | GET    | `/v1/protocols` | registry names + compile backends             |
//! | GET    | `/v1/cache`     | `pp-cache/v1` statistics                      |
//! | POST   | `/v1/run`       | `RunSpec` JSON → `pp-run/v1` report           |
//! | POST   | `/v1/stream`    | `RunSpec` JSON → JSONL probe events + report  |
//!
//! `POST` responses carry `X-PP-Cache: hit|miss|none` and
//! `X-PP-Elapsed-Us` headers; bodies stay timing-free so seeded requests
//! are byte-reproducible.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pp_core::spec::{RunSpec, SpecError};

use crate::api::{self, CompiledCache, ExecOptions};
use crate::registry;

/// Server policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads blocking on `accept`.
    pub threads: usize,
    /// Largest accepted request body, in bytes (HTTP 413 beyond).
    pub max_body: usize,
    /// Largest population a spec may materialize (HTTP 413 beyond).
    pub max_population: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { threads: 4, max_body: 1 << 20, max_population: 10_000_000 }
    }
}

/// A running server: workers draining one shared listener until
/// [`shutdown`](Server::shutdown).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<CompiledCache>,
}

impl Server {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared artifact cache (exposed for tests and stats).
    pub fn cache(&self) -> &Arc<CompiledCache> {
        &self.cache
    }

    /// Stops accepting, unblocks every worker, and joins them.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Each worker blocks in accept(); poke one connection per worker
        // so each observes the flag and exits.
        for _ in &self.workers {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the worker pool.
///
/// # Errors
///
/// Propagates bind/clone failures; everything after startup is reported
/// per-connection as HTTP errors.
pub fn serve(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let cache = Arc::new(CompiledCache::new());
    let threads = cfg.threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let listener = listener.try_clone()?;
        let stop = Arc::clone(&stop);
        let cache = Arc::clone(&cache);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        handle_connection(stream, &cache, &cfg);
                    }
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
        }));
    }
    Ok(Server { addr: local, stop, workers, cache })
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// One response, rendered by [`write_response`].
struct Response {
    status: u16,
    /// Extra headers beyond Content-Type/Length and Connection.
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self { status, headers: Vec::new(), body: body.into_bytes() }
    }

    fn from_error(e: &SpecError) -> Self {
        Self::json(e.http_status(), e.to_json())
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len()
    );
    for (k, v) in &resp.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(&resp.body);
    let _ = stream.flush();
}

/// Reads one request. `Err(Some(resp))` means "answer with this error";
/// `Err(None)` means the peer vanished (a shutdown poke) — just close.
fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
) -> Result<Request, Option<Response>> {
    const HEADER_CAP: usize = 16 * 1024;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > HEADER_CAP {
            return Err(Some(Response::json(
                400,
                err_body("bad_request", "header block exceeds 16 KiB"),
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(None),
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(Some(Response::json(
            400,
            err_body("bad_request", "malformed request line"),
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(usize::MAX);
            }
        }
    }
    if content_length == usize::MAX {
        return Err(Some(Response::json(
            400,
            err_body("bad_request", "unparseable Content-Length"),
        )));
    }
    if content_length > max_body {
        return Err(Some(Response::json(
            413,
            err_body("body_too_large", &format!("body exceeds {max_body} bytes")),
        )));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    body.truncate(content_length);
    if body.len() < content_length {
        return Err(Some(Response::json(
            400,
            err_body("bad_request", "body shorter than Content-Length"),
        )));
    }
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A minimal `pp-error/v1` body for transport-level failures (spec-level
/// failures use [`SpecError::to_json`]).
fn err_body(code: &str, detail: &str) -> String {
    let mut out = String::from("{\"schema\":\"pp-error/v1\",\"code\":\"");
    out.push_str(code);
    out.push_str("\",\"detail\":\"");
    for c in detail.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\"}");
    out
}

fn handle_connection(mut stream: TcpStream, cache: &Arc<CompiledCache>, cfg: &ServerConfig) {
    let req = match read_request(&mut stream, cfg.max_body) {
        Ok(r) => r,
        Err(Some(resp)) => {
            write_response(&mut stream, &resp);
            return;
        }
        Err(None) => return,
    };
    // A panicking handler must cost one 500, not one worker.
    let resp = catch_unwind(AssertUnwindSafe(|| route(&req, cache, cfg))).unwrap_or_else(
        |_| Response::json(500, err_body("internal", "internal server error")),
    );
    write_response(&mut stream, &resp);
}

fn route(req: &Request, cache: &Arc<CompiledCache>, cfg: &ServerConfig) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/v1/protocols") => Response::json(200, protocols_body()),
        ("GET", "/v1/cache") => Response::json(200, cache.stats().to_json()),
        ("POST", "/v1/run") => run_route(&req.body, cache, cfg, false),
        ("POST", "/v1/stream") => run_route(&req.body, cache, cfg, true),
        ("GET" | "POST", _) => {
            Response::json(404, err_body("not_found", "unknown route"))
        }
        _ => Response::json(405, err_body("method_not_allowed", "use GET or POST")),
    }
}

fn protocols_body() -> String {
    let mut s = String::from("{\"schema\":\"pp-protocols/v1\",\"protocols\":[");
    for (i, name) in registry::names().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(name);
        s.push('"');
    }
    s.push_str("],\"backends\":[");
    for (i, b) in pp_presburger::backends().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(b);
        s.push('"');
    }
    s.push_str("]}");
    s
}

fn run_route(
    body: &[u8],
    cache: &Arc<CompiledCache>,
    cfg: &ServerConfig,
    stream_events: bool,
) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            return Response::json(400, err_body("bad_request", "body is not UTF-8"))
        }
    };
    let spec = match RunSpec::from_json(text) {
        Ok(s) => s,
        Err(e) => return Response::from_error(&e),
    };
    let opts = ExecOptions { max_population: cfg.max_population };
    let started = Instant::now();
    // The stream body is buffered so a mid-run failure can still become a
    // clean HTTP error; the body format (JSONL events, summary line,
    // final pp-run/v1 report line) is unchanged.
    let result: Result<(Vec<u8>, api::CacheStatus), SpecError> = if stream_events {
        let mut out = Vec::new();
        api::execute_stream(&spec, cache, &opts, &mut out).map(|status| (out, status))
    } else {
        api::execute(&spec, cache, &opts)
            .map(|(report, status)| (report.to_json().into_bytes(), status))
    };
    let elapsed_us = started.elapsed().as_micros();
    match result {
        Ok((body, status)) => {
            let mut resp = Response { status: 200, headers: Vec::new(), body };
            resp.headers.push(("X-PP-Cache", status.as_str().to_string()));
            resp.headers.push(("X-PP-Elapsed-Us", elapsed_us.to_string()));
            if stream_events {
                resp.headers.push(("X-PP-Body", "jsonl".to_string()));
            }
            resp
        }
        Err(e) => Response::from_error(&e),
    }
}
