//! Protocols beyond the paper, kept for ablation experiments.
//!
//! The paper's majority protocol (Lemma 5 instantiated as `x₀ − x₁ < 0`)
//! uses a leader, an output bit and a clamped count — 12 reachable states —
//! and is *exact*. Later work (Angluin, Aspnes, Eisenstat, DISC 2007)
//! showed a 3-state protocol that decides majority only *with high
//! probability* but exponentially faster. Implementing it here lets
//! experiment E13 quantify the trade-off the paper's construction makes:
//! exactness and generality versus state count and speed — and
//! `pp-analysis` can compute the 3-state protocol's error probability
//! *exactly* from the configuration Markov chain.

use pp_core::Protocol;

/// Opinion state of the 3-state approximate-majority protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opinion {
    /// Committed to "0 wins".
    Zero,
    /// Undecided.
    Blank,
    /// Committed to "1 wins".
    One,
}

/// The 3-state approximate-majority protocol (post-paper; ablation only).
///
/// Rules (initiator, responder):
/// `(Zero, One) → (Zero, Blank)`, `(One, Zero) → (One, Blank)`,
/// `(Zero, Blank) → (Zero, Zero)`, `(One, Blank) → (One, One)`; all other
/// pairs are inert. Converges in Θ(n log n) interactions with high
/// probability to the initial majority value, but can err (and errs with
/// probability ≈ 1/2 from a tie).
///
/// # Example
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::ext::{ApproximateMajority, Opinion};
///
/// let mut sim = Simulation::from_counts(
///     ApproximateMajority,
///     [(true, 70), (false, 30)],
/// );
/// let mut rng = seeded_rng(2);
/// let rep = sim.measure_stabilization(&true, 100_000, &mut rng);
/// assert!(rep.converged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproximateMajority;

impl Protocol for ApproximateMajority {
    type State = Opinion;
    /// `true` = a vote for 1.
    type Input = bool;
    /// `true` = "1 wins".
    type Output = bool;

    fn input(&self, &one: &bool) -> Opinion {
        if one {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }

    fn output(&self, q: &Opinion) -> bool {
        matches!(q, Opinion::One)
    }

    fn delta(&self, &p: &Opinion, &q: &Opinion) -> (Opinion, Opinion) {
        use Opinion::{Blank, One, Zero};
        match (p, q) {
            (Zero, One) => (Zero, Blank),
            (One, Zero) => (One, Blank),
            (Zero, Blank) => (Zero, Zero),
            (One, Blank) => (One, One),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn transition_rules() {
        use Opinion::{Blank, One, Zero};
        let p = ApproximateMajority;
        assert_eq!(p.delta(&Zero, &One), (Zero, Blank));
        assert_eq!(p.delta(&One, &Zero), (One, Blank));
        assert_eq!(p.delta(&Zero, &Blank), (Zero, Zero));
        assert_eq!(p.delta(&One, &Blank), (One, One));
        assert_eq!(p.delta(&Blank, &One), (Blank, One));
        assert_eq!(p.delta(&Blank, &Blank), (Blank, Blank));
    }

    #[test]
    fn large_margin_converges_to_majority() {
        let mut rng = seeded_rng(9);
        let mut wins = 0u32;
        let trials = 20;
        for _ in 0..trials {
            let mut sim =
                Simulation::from_counts(ApproximateMajority, [(true, 75), (false, 25)]);
            let rep = sim.measure_stabilization(&true, 60_000, &mut rng);
            if rep.converged() {
                wins += 1;
            }
        }
        assert!(wins >= trials - 1, "large margins should almost never err: {wins}/{trials}");
    }

    #[test]
    fn it_is_fast_compared_to_exact_majority() {
        // Θ(n log n) vs Θ(n² log n): at n = 200 the 3-state protocol
        // stabilizes several times faster on a clear majority (empirically
        // ~4.7× under the workspace RNG; assert a 4× separation).
        let mut rng = seeded_rng(4);
        let mut approx_total = 0u64;
        let mut exact_total = 0u64;
        let trials = 20;
        for _ in 0..trials {
            let mut sim =
                Simulation::from_counts(ApproximateMajority, [(true, 140), (false, 60)]);
            let rep = sim.measure_stabilization(&true, 2_000_000, &mut rng);
            approx_total += rep.stabilized_at.expect("converges");
            let mut sim = Simulation::from_counts(
                crate::majority(),
                [(0usize, 60), (1usize, 140)],
            );
            let rep = sim.measure_stabilization(&true, 20_000_000, &mut rng);
            exact_total += rep.stabilized_at.expect("converges");
        }
        assert!(
            exact_total > 4 * approx_total,
            "exact {exact_total} should dwarf approx {approx_total}"
        );
    }
}
