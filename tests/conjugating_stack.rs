//! Integration tests across the §6 stack: urn process ↔ zero test ↔
//! counter simulation ↔ Turing machines, plus exact-vs-empirical
//! convergence times.

use population_protocols::analysis::MarkovAnalysis;
use population_protocols::core::prelude::*;
use population_protocols::machines::programs;
use population_protocols::protocols::majority;
use population_protocols::random::counter_sim::PopulationRunOutcome;
use population_protocols::random::{PopulationCounterMachine, UrnProcess, ZeroTest};

#[test]
fn zero_test_error_equals_urn_loss_probability() {
    // The zero test's decision process *is* the urn over n−1 tokens.
    let zt = ZeroTest::new(12, 2, 2);
    let urn = UrnProcess::new(11, 2, 2);
    assert_eq!(zt.false_zero_probability(), urn.loss_probability());

    let mut rng = seeded_rng(5);
    let trials = 150_000;
    let mut zt_errors = 0u64;
    for _ in 0..trials {
        if zt.run(&mut rng).reported_zero {
            zt_errors += 1;
        }
    }
    let measured = zt_errors as f64 / trials as f64;
    let analytic = urn.loss_probability();
    let se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
    assert!(
        (measured - analytic).abs() < 6.0 * se + 1e-4,
        "measured {measured:.5} vs analytic {analytic:.5}"
    );
}

#[test]
fn counter_machine_on_population_agrees_with_direct_execution() {
    let mut rng = seeded_rng(10);
    // Multiplication: the Gödel-style workload of §6.1.
    let pcm = PopulationCounterMachine::new(programs::cm_multiply(), 36, 3, 2);
    let mut clean_checked = 0u32;
    for (a, b) in [(2u128, 3u128), (4, 4), (5, 2), (0, 7)] {
        let direct = programs::cm_multiply().run(&[a, b, 0, 0], 100_000).unwrap();
        match pcm.run(&[a, b, 0, 0], 2_000_000_000, &mut rng) {
            PopulationRunOutcome::Halted { counters, silent_errors, .. } => {
                if silent_errors == 0 {
                    assert_eq!(counters, direct.counters, "{a}×{b}");
                    clean_checked += 1;
                }
            }
            other => panic!("{a}×{b} did not halt: {other:?}"),
        }
    }
    assert!(clean_checked >= 2, "too few clean runs to be meaningful");
}

#[test]
fn exact_expected_commit_time_predicts_simulation() {
    // Majority, n = 6 (4 ones vs 2 zeros): exact Markov expected time to
    // output-committed vs Monte-Carlo measurement of the same quantity.
    let inputs = [(0usize, 2u64), (1usize, 4u64)];
    let exact = MarkovAnalysis::analyze(majority(), inputs)
        .expected_steps_to_commit()
        .expect("majority commits");

    // Monte Carlo: detect commitment via the exact committed set — here we
    // replay and measure the last interaction at which any agent's output
    // differed from the stable verdict, which lower-bounds commitment and
    // should land within a factor ~2 of it.
    let mut rng = seeded_rng(3);
    let trials = 2000;
    let mut total = 0u64;
    for _ in 0..trials {
        let mut sim = Simulation::from_counts(majority(), inputs);
        let rep = sim.measure_stabilization(&true, 200_000, &mut rng);
        total += rep.stabilized_at.expect("stabilizes");
    }
    let mc = total as f64 / trials as f64;
    assert!(
        mc <= exact * 1.5 + 20.0,
        "stabilization ({mc:.1}) should not exceed commitment ({exact:.1}) by much"
    );
    assert!(
        mc >= exact * 0.05,
        "stabilization ({mc:.1}) implausibly far below commitment ({exact:.1})"
    );
}

#[test]
fn theorem8_shape_convergence_scales_near_n2_log_n() {
    // Theorem 8: O(n² log n) expected interactions for Presburger
    // predicates. Measure stabilization of majority across a doubling and
    // check the growth exponent is ≈ 2 (log factor tolerated in slack).
    let mean_time = |n: u64, seed: u64| -> f64 {
        let trials = 40;
        let mut total = 0u64;
        let mut rng = seeded_rng(seed);
        for _ in 0..trials {
            let mut sim =
                Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
            let rep = sim.measure_stabilization(&true, 600 * n * n, &mut rng);
            total += rep.stabilized_at.expect("stabilizes");
        }
        total as f64 / trials as f64
    };
    let t32 = mean_time(32, 1);
    let t64 = mean_time(64, 2);
    let ratio = t64 / t32;
    // n² scaling predicts 4×; with the log factor, a little more. Allow
    // a generous band that still excludes linear (2×) and cubic (8×).
    assert!(
        (2.8..7.5).contains(&ratio),
        "doubling n scaled time by {ratio:.2} (t32 = {t32:.0}, t64 = {t64:.0})"
    );
}

#[test]
fn population_counter_machine_rejects_undersized_population() {
    let result = std::panic::catch_unwind(|| {
        PopulationCounterMachine::new(programs::cm_add(), 3, 2, 2)
    });
    assert!(result.is_err(), "n = 3 must be rejected (leader + timer + holders)");
}
