//! E2 — §6: once unique, the leader must interact with every other agent:
//! Θ(n log n) leader interactions, i.e. Θ(n² log n) population
//! interactions (the leader participates in only 2/n of them).
//!
//! Measured directly: draw uniform ordered pairs and count interactions
//! until a fixed agent has met all others. Compared against
//! `(n²/2)·H_{n−1}` (coupon collector rescaled by the 2/n participation).

use pp_bench::{fit_exponent, fmt, mean, print_header};
use pp_core::seeded_rng;
use rand::Rng;

fn interactions_until_leader_meets_all(n: u64, rng: &mut impl Rng) -> u64 {
    let mut met = vec![false; n as usize];
    met[0] = true; // the leader
    let mut remaining = n - 1;
    let mut interactions = 0u64;
    while remaining > 0 {
        interactions += 1;
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        let other = if u == 0 {
            Some(v)
        } else if v == 0 {
            Some(u)
        } else {
            None
        };
        if let Some(o) = other {
            if !met[o as usize] {
                met[o as usize] = true;
                remaining -= 1;
            }
        }
    }
    interactions
}

fn harmonic(n: u64) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

fn main() {
    println!("\nE2: epidemic/coupon phase — paper: Θ(n² log n) interactions for the");
    println!("unique leader to meet every agent\n");
    print_header(
        &["n", "trials", "measured", "(n²/2)·H(n-1)", "ratio"],
        &[6, 6, 14, 14, 8],
    );

    let mut ns = Vec::new();
    let mut ts = Vec::new();
    let n_list: &[u64] =
        if pp_bench::smoke() { &[8, 16] } else { &[8, 16, 32, 64, 128, 256] };
    for &n in n_list {
        let trials =
            if pp_bench::smoke() { 10 } else { (4_000_000 / (n * n)).clamp(20, 2000) };
        let mut rng = seeded_rng(2 * n + 1);
        let times: Vec<f64> = (0..trials)
            .map(|_| interactions_until_leader_meets_all(n, &mut rng) as f64)
            .collect();
        let measured = mean(&times);
        let analytic = (n * n) as f64 / 2.0 * harmonic(n - 1);
        println!(
            "{:>6} {:>6} {:>14} {:>14} {:>8}",
            n,
            trials,
            fmt(measured),
            fmt(analytic),
            fmt(measured / analytic)
        );
        ns.push(n as f64);
        ts.push(measured);
    }
    println!(
        "\nfitted exponent vs n: {:.3} (paper: 2 plus a log factor)\n",
        fit_exponent(&ns, &ts)
    );
}
