//! A matching zero-dependency HTTP/1.1 client, for tests, benches, and
//! the golden-request scripts — one request per connection, mirroring the
//! server's `Connection: close` discipline.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP response, split for assertions.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path` against `addr`.
///
/// # Errors
///
/// I/O failures and malformed status lines surface as `io::Error`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body against `addr`.
///
/// # Errors
///
/// I/O failures and malformed status lines surface as `io::Error`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: pp-server\r\n");
    if let Some(b) = body {
        head.push_str(&format!("Content-Length: {}\r\n", b.len()));
        head.push_str("Content-Type: application/json\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(b) = body {
        // A server may reject from the headers alone (e.g. 413 on
        // Content-Length) and close before consuming the body; the
        // response is still there to read, so tolerate the broken pipe.
        match stream.write_all(b).and_then(|()| stream.flush()) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::BrokenPipe | io::ErrorKind::ConnectionReset
                ) => {}
            Err(e) => return Err(e),
        }
    } else {
        stream.flush()?;
    }

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let head = String::from_utf8_lossy(&raw[..header_end]);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter_map(|l| {
            l.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(Response { status, headers, body: raw[header_end + 4..].to_vec() })
}
