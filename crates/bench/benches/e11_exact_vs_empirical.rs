//! E11 — Theorem 11 / §6.2: the exact Markov-chain analysis agrees with
//! Monte-Carlo simulation.
//!
//! For small populations we build the full configuration chain, solve for
//! the expected number of interactions until the output-committed set, and
//! compare with direct simulation (measuring, per run, the interaction at
//! which the simulated trajectory first entered the committed set —
//! approximated here by the last output change + confirmation tail).

use pp_analysis::MarkovAnalysis;
use pp_bench::{fmt, mean, print_header};
use pp_core::{seeded_rng, FnProtocol, Simulation};
use pp_protocols::{majority, CountThreshold};

fn epidemic() -> impl pp_core::Protocol<State = bool, Input = bool, Output = bool> + Clone {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

fn main() {
    println!("\nE11: Theorem 11 — exact chain analysis vs Monte-Carlo\n");
    print_header(
        &["protocol", "n", "configs", "exact E[T]", "MC E[T]", "ratio"],
        &[14, 5, 9, 12, 12, 8],
    );

    // Epidemic: committed = all-infected; MC measures consensus directly.
    let epi_ns: &[u64] = if pp_bench::smoke() { &[6] } else { &[6, 10, 14] };
    for &n in epi_ns {
        let m = MarkovAnalysis::analyze(epidemic(), [(true, 1), (false, n - 1)]);
        let exact = m.expected_steps_to_commit().unwrap();
        let trials = if pp_bench::smoke() { 100 } else { 4000 };
        let mut total = 0u64;
        for seed in 0..trials {
            let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, n - 1)]);
            let mut rng = seeded_rng(seed);
            total += sim.run_until_consensus(&true, u64::MAX, &mut rng).unwrap();
        }
        let mc = total as f64 / trials as f64;
        println!(
            "{:>14} {:>5} {:>9} {:>12} {:>12} {:>8}",
            "epidemic",
            n,
            m.graph().len(),
            fmt(exact),
            fmt(mc),
            fmt(mc / exact)
        );
    }

    // Majority: committed set = configurations from which outputs are
    // frozen; MC uses last-wrong-output time as a lower-bound proxy.
    let maj_splits: &[(u64, u64)] =
        if pp_bench::smoke() { &[(2, 3)] } else { &[(2, 3), (3, 4), (4, 5)] };
    for &(zeros, ones) in maj_splits {
        let m = MarkovAnalysis::analyze(majority(), [(0usize, zeros), (1usize, ones)]);
        let exact = m.expected_steps_to_commit().unwrap();
        let trials = if pp_bench::smoke() { 50 } else { 400 };
        let mut times = Vec::new();
        for seed in 0..trials {
            let mut sim = Simulation::from_counts(majority(), [(0usize, zeros), (1usize, ones)]);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, 60_000, &mut rng);
            times.push(rep.stabilized_at.expect("stabilizes") as f64);
        }
        let mc = mean(&times);
        println!(
            "{:>14} {:>5} {:>9} {:>12} {:>12} {:>8}",
            "majority",
            zeros + ones,
            m.graph().len(),
            fmt(exact),
            fmt(mc),
            fmt(mc / exact)
        );
    }

    // Count-to-3.
    let ct_ns: &[u64] = if pp_bench::smoke() { &[5] } else { &[5, 8] };
    for &n in ct_ns {
        let m = MarkovAnalysis::analyze(CountThreshold::new(3), [(true, 3), (false, n - 3)]);
        let exact = m.expected_steps_to_commit().unwrap();
        let trials = if pp_bench::smoke() { 50 } else { 400 };
        let mut times = Vec::new();
        for seed in 0..trials {
            let mut sim =
                Simulation::from_counts(CountThreshold::new(3), [(true, 3), (false, n - 3)]);
            let mut rng = seeded_rng(seed);
            let rep = sim.measure_stabilization(&true, 60_000, &mut rng);
            times.push(rep.stabilized_at.expect("stabilizes") as f64);
        }
        println!(
            "{:>14} {:>5} {:>9} {:>12} {:>12} {:>8}",
            "count-to-3",
            n,
            m.graph().len(),
            fmt(exact),
            fmt(mean(&times)),
            fmt(mean(&times) / exact)
        );
    }

    println!("\npaper: the chain analysis is exact for commitment; stabilization (output");
    println!("last wrong) is earlier, so MC/exact ratios at or below 1 are the expected shape\n");
}
