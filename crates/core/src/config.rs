//! Population configurations.
//!
//! A configuration maps each agent to a protocol state (§3.1). Because
//! agents are anonymous and, on the complete interaction graph, protocols
//! depend only on the *multiset* of states (§3.5), the workhorse
//! representation is [`CountConfig`]: a vector of state counts. For general
//! interaction graphs, agent identity matters to the schedule and
//! [`AgentConfig`] stores one state per agent.

use crate::bitset::BitSet;
use crate::registry::StateId;

/// A complete-graph configuration represented as the multiset of agent
/// states: `counts[s]` agents are in state `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountConfig {
    counts: Vec<u64>,
    n: u64,
}

impl CountConfig {
    /// Builds a configuration from `(state, multiplicity)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the resulting population is empty.
    pub fn from_pairs<I: IntoIterator<Item = (StateId, u64)>>(pairs: I) -> Self {
        let mut cfg = Self { counts: Vec::new(), n: 0 };
        for (s, k) in pairs {
            cfg.add(s, k);
        }
        assert!(cfg.n > 0, "population must be non-empty");
        cfg
    }

    /// An empty configuration (population of zero agents); use
    /// [`add`](Self::add) to populate it.
    pub fn empty() -> Self {
        Self { counts: Vec::new(), n: 0 }
    }

    /// Adds `k` agents in state `s`.
    pub fn add(&mut self, s: StateId, k: u64) {
        if k == 0 {
            return;
        }
        self.ensure_len(s.index() + 1);
        self.counts[s.index()] += k;
        self.n += k;
    }

    /// Removes `k` agents in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` agents are in state `s`.
    pub fn remove(&mut self, s: StateId, k: u64) {
        let c = &mut self.counts[s.index()];
        assert!(*c >= k, "removing {k} agents from state with count {c}");
        *c -= k;
        self.n -= k;
    }

    /// Population size `n`.
    #[inline]
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Number of agents currently in state `s`.
    #[inline]
    pub fn count(&self, s: StateId) -> u64 {
        self.counts.get(s.index()).copied().unwrap_or(0)
    }

    /// Grows the dense count vector to cover at least `len` states.
    pub fn ensure_len(&mut self, len: usize) {
        if self.counts.len() < len {
            self.counts.resize(len, 0);
        }
    }

    /// Applies one interaction: an initiator in state `p` and a responder in
    /// state `q` move to `p2` and `q2`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not contain the required agents
    /// (two distinct agents: if `p == q`, at least two agents in that state).
    #[inline]
    pub fn apply(&mut self, (p, q): (StateId, StateId), (p2, q2): (StateId, StateId)) {
        if p == q {
            debug_assert!(self.count(p) >= 2, "need two agents in state {p:?}");
        } else {
            debug_assert!(self.count(p) >= 1 && self.count(q) >= 1);
        }
        self.ensure_len(p2.index().max(q2.index()) + 1);
        self.counts[p.index()] -= 1;
        self.counts[q.index()] -= 1;
        self.counts[p2.index()] += 1;
        self.counts[q2.index()] += 1;
    }

    /// Applies `k` identical interactions in bulk: `k` initiators in state
    /// `p` and `k` responders in state `q` move to `p2` and `q2`. Used by
    /// the batched engine ([`crate::batch`]), where a whole batch's
    /// transitions are grouped by state pair.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the configuration does not contain the
    /// required `2k` agents.
    #[inline]
    pub fn apply_many(
        &mut self,
        (p, q): (StateId, StateId),
        (p2, q2): (StateId, StateId),
        k: u64,
    ) {
        if p == q {
            debug_assert!(self.count(p) >= 2 * k, "need {} agents in state {p:?}", 2 * k);
        } else {
            debug_assert!(self.count(p) >= k && self.count(q) >= k);
        }
        self.ensure_len(p2.index().max(q2.index()) + 1);
        self.counts[p.index()] -= k;
        self.counts[q.index()] -= k;
        self.counts[p2.index()] += k;
        self.counts[q2.index()] += k;
    }

    /// Overwrites this configuration with a copy of `other`, reusing the
    /// existing allocation (the capacity-preserving form of `clone_from`
    /// for hot loops like
    /// [`parallel_round`](crate::Simulation::parallel_round)).
    pub fn copy_from(&mut self, other: &CountConfig) {
        self.counts.clear();
        self.counts.extend_from_slice(&other.counts);
        self.n = other.n;
    }

    /// Empties the configuration to `len` zeroed state slots, reusing the
    /// allocation.
    pub fn reset(&mut self, len: usize) {
        self.counts.clear();
        self.counts.resize(len, 0);
        self.n = 0;
    }

    /// Iterates over `(state, count)` pairs with non-zero count.
    pub fn support(&self) -> impl Iterator<Item = (StateId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (StateId(i as u32), c))
    }

    /// The raw dense count slice (indexed by state id).
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Canonicalizes into a hashable, order-normalized form.
    pub fn to_canonical(&self) -> CanonicalConfig {
        CanonicalConfig::from_counts(self)
    }

    /// Picks the state of the agent with *global index* `idx` under the
    /// canonical ordering (agents sorted by state id). Used for weighted
    /// sampling: drawing `idx` uniformly from `0..n` draws a uniform agent.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n`.
    #[inline]
    pub fn state_of_index(&self, mut idx: u64) -> StateId {
        for (i, &c) in self.counts.iter().enumerate() {
            if idx < c {
                return StateId(i as u32);
            }
            idx -= c;
        }
        panic!("agent index out of range");
    }
}

impl Default for CountConfig {
    /// The empty configuration (same as [`CountConfig::empty`]).
    fn default() -> Self {
        Self::empty()
    }
}

/// A canonical (sorted, deduplicated) multiset representation of a
/// configuration, suitable as a hash-map key in exact analyses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalConfig(Vec<(StateId, u64)>);

impl CanonicalConfig {
    /// Canonicalizes a count configuration.
    pub fn from_counts(cfg: &CountConfig) -> Self {
        Self(cfg.support().collect())
    }

    /// Reconstructs the dense count representation.
    pub fn to_counts(&self) -> CountConfig {
        CountConfig::from_pairs(self.0.iter().copied())
    }

    /// The `(state, count)` pairs in increasing state order.
    pub fn pairs(&self) -> &[(StateId, u64)] {
        &self.0
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.0.iter().map(|&(_, c)| c).sum()
    }
}

/// A configuration for populations on arbitrary interaction graphs: one
/// state per (named) agent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AgentConfig {
    states: Vec<StateId>,
}

impl AgentConfig {
    /// Builds a configuration from per-agent states.
    pub fn new(states: Vec<StateId>) -> Self {
        Self { states }
    }

    /// Population size `n`.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// State of agent `a`.
    #[inline]
    pub fn state(&self, a: u32) -> StateId {
        self.states[a as usize]
    }

    /// Applies one interaction along edge `(u, v)`.
    #[inline]
    pub fn apply(&mut self, (u, v): (u32, u32), (p2, q2): (StateId, StateId)) {
        self.states[u as usize] = p2;
        self.states[v as usize] = q2;
    }

    /// Overwrites the state of agent `a` (transient corruption / churn in
    /// [`faults`](crate::faults)).
    #[inline]
    pub fn set(&mut self, a: u32, s: StateId) {
        self.states[a as usize] = s;
    }

    /// Mutable view of the state column, for the batched engine's hot loop
    /// — indexing a local slice keeps its pointer and length in registers,
    /// where going through `self` reloads them after every store.
    #[inline]
    pub(crate) fn states_mut(&mut self) -> &mut [StateId] {
        &mut self.states
    }

    /// Iterates over agent states in agent order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.states.iter().copied()
    }

    /// The raw per-agent state slice (indexed by agent). The batched agent
    /// kernel ([`crate::agent_batch`]) hands this to worker threads for
    /// shared read-only transition lookups.
    #[inline]
    pub fn as_slice(&self) -> &[StateId] {
        &self.states
    }

    /// Collapses to the multiset view (forgetting agent identity).
    pub fn to_counts(&self) -> CountConfig {
        let mut cfg = CountConfig::empty();
        for &s in &self.states {
            cfg.add(s, 1);
        }
        cfg
    }
}

impl FromIterator<StateId> for AgentConfig {
    fn from_iter<T: IntoIterator<Item = StateId>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// Struct-of-arrays store for the per-agent engine: one dense state column
/// ([`AgentConfig`]) plus packed per-agent flags.
///
/// The agent engine used to carry `crashed: Vec<bool>` and
/// `coins: Vec<Option<bool>>` alongside the states. At 10⁸ agents those
/// columns cost 200 MB and, because the hot loop touches two random agents
/// per interaction, every byte of them competes with the states for cache.
/// Here the crash mask is one bit per agent and a coin is two bits
/// (`coin_known` says whether the agent has a coin at all — the old `None` —
/// and `coin_value` holds it), so the whole flag block at 10⁸ agents is
/// ~37 MB and a flag test is a shift-and-mask.
///
/// The live count is maintained incrementally by [`crash`](Self::crash), so
/// liveness queries are `O(1)`.
#[derive(Debug, Clone)]
pub struct AgentStore {
    states: AgentConfig,
    crashed: BitSet,
    coin_known: BitSet,
    coin_value: BitSet,
    live: usize,
}

impl AgentStore {
    /// Wraps a state column: all agents live, no coins flipped yet.
    pub fn new(states: AgentConfig) -> Self {
        let n = states.population();
        Self {
            states,
            crashed: BitSet::new(n),
            coin_known: BitSet::new(n),
            coin_value: BitSet::new(n),
            live: n,
        }
    }

    /// Population size (including crashed agents, which keep their slot).
    #[inline]
    pub fn population(&self) -> usize {
        self.states.population()
    }

    /// Number of agents that have not crashed.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// The state column.
    #[inline]
    pub fn states(&self) -> &AgentConfig {
        &self.states
    }

    /// State of agent `a`.
    #[inline]
    pub fn state(&self, a: u32) -> StateId {
        self.states.state(a)
    }

    /// Overwrites the state of agent `a`.
    #[inline]
    pub fn set_state(&mut self, a: u32, s: StateId) {
        self.states.set(a, s);
    }

    /// Applies one interaction along edge `(u, v)`.
    #[inline]
    pub fn apply(&mut self, edge: (u32, u32), after: (StateId, StateId)) {
        self.states.apply(edge, after);
    }

    /// Mutable view of the state column (see [`AgentConfig::states_mut`]).
    #[inline]
    pub(crate) fn states_mut(&mut self) -> &mut [StateId] {
        self.states.states_mut()
    }

    /// Iterates over agent states in agent order (crashed ones included).
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.states.iter()
    }

    /// Whether agent `a` has crashed.
    #[inline]
    pub fn is_crashed(&self, a: u32) -> bool {
        self.crashed.get(a as usize)
    }

    /// Permanently marks agent `a` as crashed. Returns `false` (and does
    /// nothing) if the agent is already crashed or if crashing it would
    /// leave fewer than 2 live agents.
    pub fn crash(&mut self, a: u32) -> bool {
        if self.crashed.get(a as usize) || self.live <= 2 {
            return false;
        }
        self.crashed.set(a as usize, true);
        self.live -= 1;
        true
    }

    /// The synthesized coin of agent `a` (`None` until first set and after
    /// [`clear_coins`](Self::clear_coins)).
    #[inline]
    pub fn coin(&self, a: u32) -> Option<bool> {
        if self.coin_known.get(a as usize) {
            Some(self.coin_value.get(a as usize))
        } else {
            None
        }
    }

    /// Sets the synthesized coin of agent `a`.
    #[inline]
    pub fn set_coin(&mut self, a: u32, value: bool) {
        self.coin_known.set(a as usize, true);
        self.coin_value.set(a as usize, value);
    }

    /// Resets every agent's synthesized coin to `None`.
    pub fn clear_coins(&mut self) {
        self.coin_known.clear_all();
        self.coin_value.clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StateId {
        StateId(i)
    }

    #[test]
    fn from_pairs_accumulates() {
        let cfg = CountConfig::from_pairs([(s(0), 3), (s(2), 1), (s(0), 2)]);
        assert_eq!(cfg.population(), 6);
        assert_eq!(cfg.count(s(0)), 5);
        assert_eq!(cfg.count(s(1)), 0);
        assert_eq!(cfg.count(s(2)), 1);
        assert_eq!(cfg.count(s(99)), 0);
    }

    #[test]
    fn apply_moves_two_agents() {
        let mut cfg = CountConfig::from_pairs([(s(0), 2), (s(1), 1)]);
        cfg.apply((s(0), s(1)), (s(2), s(0)));
        assert_eq!(cfg.population(), 3);
        assert_eq!(cfg.count(s(0)), 2);
        assert_eq!(cfg.count(s(1)), 0);
        assert_eq!(cfg.count(s(2)), 1);
    }

    #[test]
    fn apply_same_state_pair() {
        let mut cfg = CountConfig::from_pairs([(s(1), 2)]);
        cfg.apply((s(1), s(1)), (s(2), s(0)));
        assert_eq!(cfg.count(s(1)), 0);
        assert_eq!(cfg.count(s(2)), 1);
        assert_eq!(cfg.count(s(0)), 1);
    }

    #[test]
    fn apply_many_is_k_applies() {
        let mut a = CountConfig::from_pairs([(s(0), 5), (s(1), 4)]);
        let mut b = a.clone();
        a.apply_many((s(0), s(1)), (s(2), s(1)), 3);
        for _ in 0..3 {
            b.apply((s(0), s(1)), (s(2), s(1)));
        }
        assert_eq!(a, b);
        assert_eq!(a.population(), 9);
    }

    #[test]
    fn copy_from_and_reset_reuse_allocation() {
        let src = CountConfig::from_pairs([(s(1), 2), (s(3), 7)]);
        let mut dst = CountConfig::empty();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.reset(2);
        assert_eq!(dst.population(), 0);
        assert_eq!(dst.as_slice(), &[0, 0]);
        dst.add(s(0), 1);
        assert_eq!(dst.population(), 1);
    }

    #[test]
    fn canonical_roundtrip() {
        let cfg = CountConfig::from_pairs([(s(3), 2), (s(0), 1)]);
        let canon = cfg.to_canonical();
        assert_eq!(canon.pairs(), &[(s(0), 1), (s(3), 2)]);
        assert_eq!(canon.population(), 3);
        let back = canon.to_counts();
        assert_eq!(back.count(s(3)), 2);
        assert_eq!(back.count(s(0)), 1);
    }

    #[test]
    fn canonical_ignores_trailing_zeros() {
        let mut a = CountConfig::from_pairs([(s(0), 1), (s(1), 1)]);
        let b = CountConfig::from_pairs([(s(0), 1), (s(1), 1)]);
        a.ensure_len(50); // extra zero slots must not affect identity
        assert_eq!(a.to_canonical(), b.to_canonical());
    }

    #[test]
    fn state_of_index_walks_cumulative() {
        let cfg = CountConfig::from_pairs([(s(0), 2), (s(2), 3)]);
        assert_eq!(cfg.state_of_index(0), s(0));
        assert_eq!(cfg.state_of_index(1), s(0));
        assert_eq!(cfg.state_of_index(2), s(2));
        assert_eq!(cfg.state_of_index(4), s(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn state_of_index_out_of_range() {
        let cfg = CountConfig::from_pairs([(s(0), 1)]);
        cfg.state_of_index(1);
    }

    proptest::proptest! {
        #[test]
        fn prop_population_invariant_under_apply(
            c0 in 1u64..6, c1 in 1u64..6, c2 in 0u64..6,
        ) {
            let mut cfg = CountConfig::from_pairs([(s(0), c0), (s(1), c1), (s(2), c2)]);
            let n = cfg.population();
            cfg.apply((s(0), s(1)), (s(2), s(2)));
            proptest::prop_assert_eq!(cfg.population(), n);
            proptest::prop_assert_eq!(cfg.count(s(2)), c2 + 2);
        }

        #[test]
        fn prop_canonical_is_order_independent(
            a in 0u64..5, b in 0u64..5, c in 0u64..5,
        ) {
            proptest::prop_assume!(a + b + c > 0);
            let x = CountConfig::from_pairs([(s(0), a), (s(1), b), (s(2), c)]);
            let y = CountConfig::from_pairs([(s(2), c), (s(0), a), (s(1), b)]);
            proptest::prop_assert_eq!(x.to_canonical(), y.to_canonical());
        }

        #[test]
        fn prop_state_of_index_is_a_bijection_onto_agents(
            a in 0u64..5, b in 0u64..5,
        ) {
            proptest::prop_assume!(a + b > 0);
            let cfg = CountConfig::from_pairs([(s(0), a), (s(3), b)]);
            let mut seen0 = 0u64;
            let mut seen3 = 0u64;
            for i in 0..cfg.population() {
                match cfg.state_of_index(i) {
                    StateId(0) => seen0 += 1,
                    StateId(3) => seen3 += 1,
                    other => proptest::prop_assert!(false, "unexpected {other:?}"),
                }
            }
            proptest::prop_assert_eq!((seen0, seen3), (a, b));
        }
    }

    #[test]
    fn agent_store_tracks_crashes_and_coins() {
        let states: AgentConfig = [s(0), s(1), s(0), s(2)].into_iter().collect();
        let mut store = AgentStore::new(states);
        assert_eq!(store.population(), 4);
        assert_eq!(store.live(), 4);
        assert!(!store.is_crashed(2));

        assert!(store.crash(2));
        assert!(!store.crash(2), "double crash refused");
        assert_eq!(store.live(), 3);
        assert!(store.is_crashed(2));
        assert!(store.crash(0));
        assert!(!store.crash(1), "would leave fewer than 2 live agents");
        assert_eq!(store.live(), 2);

        assert_eq!(store.coin(1), None);
        store.set_coin(1, true);
        store.set_coin(3, false);
        assert_eq!(store.coin(1), Some(true));
        assert_eq!(store.coin(3), Some(false));
        store.clear_coins();
        assert_eq!(store.coin(1), None);
        assert_eq!(store.coin(3), None);

        store.apply((1, 3), (s(5), s(6)));
        assert_eq!(store.state(1), s(5));
        assert_eq!(store.state(3), s(6));
        store.set_state(1, s(7));
        assert_eq!(store.states().as_slice()[1], s(7));
    }

    #[test]
    fn agent_config_apply_and_collapse() {
        let mut ac: AgentConfig = [s(0), s(1), s(0)].into_iter().collect();
        ac.apply((0, 1), (s(1), s(1)));
        assert_eq!(ac.state(0), s(1));
        assert_eq!(ac.state(1), s(1));
        let counts = ac.to_counts();
        assert_eq!(counts.count(s(1)), 2);
        assert_eq!(counts.count(s(0)), 1);
        assert_eq!(counts.population(), 3);
    }
}
