//! Exact (exhaustive) verification of the extension protocols: the §8
//! one-way threshold and the ablation approximate majority, using the
//! Theorem 6 decision procedure — every fair execution is covered, not a
//! sample.

use population_protocols::analysis::verify::{StableComputation, Verdict};
use population_protocols::analysis::{verify_predicate, MarkovAnalysis};
use population_protocols::protocols::ext::ApproximateMajority;
use population_protocols::protocols::oneway::one_way_count_threshold;

#[test]
fn one_way_threshold_verified_exhaustively() {
    // For every k ≤ 4 and every split with 2 ≤ n ≤ 6: the one-way protocol
    // stably computes "ones ≥ k" under all fair schedules.
    for k in 1u32..=4 {
        for ones in 0u64..=6 {
            for zeros in 0u64..=(6 - ones) {
                if ones + zeros < 2 {
                    continue;
                }
                let expected = ones >= u64::from(k);
                let report = verify_predicate(
                    one_way_count_threshold(k),
                    [(true, ones), (false, zeros)],
                    expected,
                );
                assert!(
                    report.holds(),
                    "k={k} ones={ones} zeros={zeros}: {:?}",
                    report.verdict
                );
            }
        }
    }
}

#[test]
fn one_way_max_level_is_min_k_ones() {
    // Structural invariant behind the protocol: explore all reachable
    // configurations and check no level ever exceeds the number of ones.
    use population_protocols::analysis::ConfigGraph;
    for ones in 0u64..=5 {
        let g = ConfigGraph::explore(
            one_way_count_threshold(10),
            [(true, ones), (false, 6 - ones.min(6))],
        );
        for i in 0..g.len() {
            for &(sid, _) in g.config(i).pairs() {
                let level = g.runtime().state(sid).level;
                assert!(
                    u64::from(level) <= ones,
                    "level {level} exceeds ones={ones}"
                );
            }
        }
    }
}

#[test]
fn approximate_majority_is_not_stable_on_thin_margins() {
    // The exact analyzer must REFUSE to call the 3-state protocol a stable
    // computation of majority: from a 3-2 split some fair executions
    // commit to the minority. Verdict: Ambiguous (multiple outcomes), not
    // Stable(true).
    let a = StableComputation::analyze(ApproximateMajority, [(true, 3), (false, 2)]);
    match a.verdict() {
        Verdict::Ambiguous { outcomes } => {
            assert!(outcomes.len() >= 2, "both verdicts reachable: {outcomes:?}");
        }
        v => panic!("expected ambiguity, got {v:?}"),
    }
}

#[test]
fn approximate_majority_error_probability_decreases_with_margin() {
    let error = |ones: u64, zeros: u64| -> f64 {
        let m = MarkovAnalysis::analyze(ApproximateMajority, [(true, ones), (false, zeros)]);
        let probs = m.commit_probabilities();
        m.classes()
            .iter()
            .zip(&probs)
            .filter(|(cls, _)| !(cls.len() == 1 && cls[0].0))
            .map(|(_, &p)| p)
            .sum()
    };
    let thin = error(5, 4);
    let wide = error(8, 1);
    assert!(thin > 0.2, "thin margins err often: {thin}");
    assert!(wide < 0.01, "wide margins almost never err: {wide}");
    assert!(wide < thin / 10.0);
}

#[test]
fn language_protocol_verified_exhaustively() {
    // {w : |w|_a = |w|_b} via the language pipeline, verified exactly for
    // all words of length ≤ 5 (as count vectors).
    use population_protocols::presburger::{parse, SymmetricLanguage};
    let l = SymmetricLanguage::new(vec!['a', 'b'], parse("na = nb").unwrap().formula).unwrap();
    for a in 0u64..=5 {
        for b in 0u64..=(5 - a) {
            if a + b < 2 {
                continue;
            }
            let expected = a == b;
            let report =
                verify_predicate(l.protocol().clone(), [(0usize, a), (1usize, b)], expected);
            assert!(report.holds(), "a={a} b={b}: {:?}", report.verdict);
        }
    }
}
