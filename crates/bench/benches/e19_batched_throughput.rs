//! E19 — throughput of the batched engine vs sequential stepping.
//!
//! Not a paper claim: this table measures what the Θ(√n) batch engine
//! (`Simulation::run_batched`) buys over the one-draw-per-interaction
//! `step` path on the e12 majority workload, across a population sweep.
//! The sequential cost per interaction is O(|Q|) and independent of `n`;
//! the batched cost is amortized over collision-free runs of expected
//! length ≈ 0.63·√n, so the advantage grows with the population.
//!
//! Each row reports amortized nanoseconds per interaction plus, for the
//! batched rows, the speedup against the sequential measurement at the
//! same `n`. Results land in `BENCH_e19_batched_throughput.json`.

use std::time::Instant;

use pp_bench::{fmt, print_header, BenchReport};
use pp_core::{seeded_rng, Simulation};
use pp_protocols::majority;

/// Amortized ns/interaction for `k` sequential steps (after `k/4` warmup).
fn time_steps(n: u64, k: u64) -> f64 {
    let mut sim = Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
    let mut rng = seeded_rng(1);
    sim.run(k / 4, &mut rng);
    let start = Instant::now();
    sim.run(k, &mut rng);
    start.elapsed().as_nanos() as f64 / k as f64
}

/// Amortized ns/interaction for `k` batched interactions (after `k/4`
/// warmup, which also interns the reachable states and builds the
/// collision-free run-length table).
fn time_batched(n: u64, k: u64) -> f64 {
    let mut sim = Simulation::from_counts(majority(), [(0usize, n / 2), (1usize, n / 2 + 1)]);
    let mut rng = seeded_rng(2);
    sim.run_batched(k / 4, &mut rng);
    let start = Instant::now();
    sim.run_batched(k, &mut rng);
    start.elapsed().as_nanos() as f64 / k as f64
}

fn main() {
    println!("\nE19: batched vs sequential throughput (majority workload)\n");
    let smoke = pp_bench::smoke();
    // Interaction budgets: the sequential engine is O(1) in n, so a flat
    // budget suffices; the batched engine needs enough interactions to
    // amortize over many batches even at n = 10⁸ (cap = 10⁴).
    let (k_seq, k_bat): (u64, u64) = if smoke { (20_000, 20_000) } else { (2_000_000, 4_000_000) };
    let ns_list: &[u64] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]
    };
    let mut report = BenchReport::new("e19_batched_throughput");
    report.set_meta("k_seq", k_seq);
    report.set_meta("k_batched", k_bat);
    print_header(&["case", "n", "ns/interaction", "speedup"], &[20, 12, 14, 8]);
    for &n in ns_list {
        let seq = time_steps(n, k_seq);
        println!("{:>20} {:>12} {:>14} {:>8}", "majority_step", n, fmt(seq), "");
        report.push_row([
            ("case", "majority_step".into()),
            ("n", n.into()),
            ("ns_per_step", seq.into()),
        ] as [(&str, pp_bench::Value); 3]);

        let bat = time_batched(n, k_bat);
        let speedup = seq / bat;
        println!("{:>20} {:>12} {:>14} {:>8}", "majority_batched", n, fmt(bat), fmt(speedup));
        report.push_row([
            ("case", "majority_batched".into()),
            ("n", n.into()),
            ("ns_per_step", bat.into()),
            ("speedup", speedup.into()),
        ] as [(&str, pp_bench::Value); 4]);
    }
    report.write();
}
