//! Fault injection (§8): "If an agent dies, say from an exhausted battery,
//! the interactions between the remaining agents are unaffected. Of course,
//! many of the algorithms we describe here would not survive the failure of
//! a single agent, especially those based on leader election."
//!
//! These tests make both halves of that observation concrete.

use population_protocols::core::prelude::*;
use population_protocols::protocols::linear::LinState;
use population_protocols::protocols::{majority, CountThreshold, PhaseClock, Ranking};

fn epidemic() -> impl pp_core::Protocol<State = bool, Input = bool, Output = bool> + Clone {
    FnProtocol::new(
        |&b: &bool| b,
        |&q: &bool| q,
        |&p: &bool, &q: &bool| (p || q, p || q),
    )
}

#[test]
fn epidemic_survives_crashes_of_uninfected_agents() {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 20)]);
    let mut rng = seeded_rng(1);
    // Kill five healthy agents before the epidemic spreads.
    for _ in 0..5 {
        assert!(sim.crash_agent_in_state(&false));
    }
    assert_eq!(sim.population(), 16);
    let rep = sim.measure_stabilization(&true, 100_000, &mut rng);
    assert!(rep.converged(), "epidemic is robust to non-seed crashes");
}

#[test]
fn epidemic_dies_with_its_seed() {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 20)]);
    // Kill the only infected agent before it spreads.
    assert!(sim.crash_agent_in_state(&true));
    let mut rng = seeded_rng(2);
    sim.run(50_000, &mut rng);
    assert_eq!(sim.consensus_output(), Some(&false), "no seed, no alert");
}

#[test]
fn count_to_k_loses_tokens_with_crashed_accumulators() {
    // 5 hot birds; the predicate is true. Crash an agent carrying an
    // accumulated count of 2 before the alert fires: the remaining tokens
    // sum to 3 < 5 and the population stabilizes to the WRONG answer —
    // exactly the fragility §8 warns about.
    let mut sim = Simulation::from_counts(CountThreshold::new(5), [(true, 5), (false, 15)]);
    let mut rng = seeded_rng(3);
    // Run until some agent holds a partial count of exactly 2 (and no
    // alert has fired).
    let mut found = false;
    for _ in 0..100_000 {
        sim.step(&mut rng);
        if sim.count_of_state(&5) > 0 {
            break; // alert fired first; try another seed below
        }
        if sim.count_of_state(&2) > 0 {
            found = true;
            break;
        }
    }
    if !found {
        // Alert fired before any 2-token formed under this seed; the
        // scenario needs a token to kill, so re-run deterministically with
        // another seed where a 2 forms first.
        sim = Simulation::from_counts(CountThreshold::new(5), [(true, 5), (false, 15)]);
        let mut rng2 = seeded_rng(1234);
        loop {
            sim.step(&mut rng2);
            assert_eq!(sim.count_of_state(&5), 0, "seed must form a 2-token before alerting");
            if sim.count_of_state(&2) > 0 {
                break;
            }
        }
    }
    assert!(sim.crash_agent_in_state(&2), "kill the token carrier");
    let rep = sim.measure_stabilization(&false, 400_000, &mut rng);
    assert!(
        rep.converged(),
        "after losing 2 of 5 tokens the population must stabilize to false"
    );
}

#[test]
fn majority_leader_crash_freezes_outputs() {
    // The Lemma 5 majority protocol funnels everything through a unique
    // leader. Crash every leader and the output bits can never change
    // again — stale verdicts persist (the §8 leader-election fragility).
    let mut sim = Simulation::from_counts(majority(), [(0usize, 6), (1usize, 7)]);
    let mut rng = seeded_rng(5);
    sim.run(50, &mut rng); // partial progress; leaders still merging
    // Crash all remaining leaders.
    let leader_states: Vec<LinState> = sim
        .config()
        .support()
        .map(|(id, _)| *sim.runtime().state(id))
        .filter(|s| s.leader)
        .collect();
    let mut crashed = 0u64;
    for s in leader_states {
        while sim.population() > 2 && sim.crash_agent_in_state(&s) {
            crashed += 1;
        }
    }
    assert!(crashed > 0, "some leader must have been crashed");
    // With no leaders, every transition is a no-op: effective steps freeze.
    let before = sim.effective_steps();
    sim.run(20_000, &mut rng);
    assert_eq!(
        sim.effective_steps(),
        before,
        "a leaderless Lemma 5 population is frozen"
    );
}

// ---------------------------------------------------------------------------
// Self-stabilization: recovery from adversarial *initialization* (ISSUE 6).
// The phase clock and the ranking protocol recover from any start by design;
// the paper's exact majority provably does not. Each claim is pinned here.
// ---------------------------------------------------------------------------

/// Folds per-trial phase-clock resync reports into an [`Mttr`] summary,
/// starting every trial from `init` — always in trial order, so the JSON is
/// byte-identical at any thread count.
fn clock_mttr(
    n: u64,
    period: u32,
    init: &AdversarialInit<u32>,
    trials: u64,
    horizon: u64,
    threads: Option<usize>,
) -> Mttr {
    let mut ens = Ensemble::new(trials, 0xC10C * n);
    if let Some(t) = threads {
        ens = ens.with_threads(t);
    }
    let reports = ens.map(|_, rng| {
        let clock = PhaseClock::new(period);
        let mut sim = Simulation::from_counts(clock, [((), n)]);
        sim.apply_adversarial_init(init, rng);
        PhaseClock::measure_resync(&mut sim, horizon, 512, rng)
    });
    let mut mttr = Mttr::new();
    for rep in &reports {
        mttr.absorb(rep);
    }
    mttr
}

#[test]
fn self_stab_phase_clock_resyncs_from_every_init_mode() {
    // Worst-case-enumerated universe: four hours spread evenly around the
    // dial, so every enumerated configuration is a hostile multi-cluster
    // split (small universe keeps the enumeration space tractable).
    let quarters = vec![0u32, 16, 32, 48];
    for n in [64u64, 256] {
        let horizon = if n == 64 { 800_000 } else { 2_000_000 };
        let dial: Vec<u32> = (0..64).collect();
        let modes = [
            ("uniform-random", AdversarialInit::uniform_random(dial)),
            ("flood", AdversarialInit::flood(17u32)),
            (
                "enumerated",
                AdversarialInit::enumerated(
                    quarters.clone(),
                    enumeration_count(quarters.len(), n) / 2,
                ),
            ),
        ];
        for (name, init) in modes {
            let mttr = clock_mttr(n, 64, &init, 3, horizon, None);
            assert_eq!(
                mttr.recovered(),
                mttr.trials(),
                "phase clock must resync from {name} init at n={n}"
            );
        }
    }
}

#[test]
fn self_stab_phase_clock_flood_init_is_already_legal() {
    // A single-hour flood is a *legal* clock configuration: recovery is
    // instant, and the MTTR summary should say so exactly.
    let mttr = clock_mttr(64, 64, &AdversarialInit::flood(9u32), 4, 100_000, None);
    assert_eq!(mttr.recovered(), 4);
    assert_eq!(mttr.mean(), 0.0, "flooded clock never counts as desynchronized");
}

#[test]
fn self_stab_ensemble_mttr_is_byte_identical_across_thread_counts() {
    // The mergeable-MTTR path: one worker vs two must produce the same
    // bytes, because per-trial reports are folded in trial order.
    let dial: Vec<u32> = (0..64).collect();
    let init = AdversarialInit::uniform_random(dial);
    let one = clock_mttr(64, 64, &init, 6, 600_000, Some(1));
    let two = clock_mttr(64, 64, &init, 6, 600_000, Some(2));
    assert_eq!(one.to_json(), two.to_json(), "MTTR must not depend on thread count");
}

#[test]
fn self_stab_ranking_seats_a_permutation_from_uniform_random_init() {
    // Agent engine with synthesized coins: from a uniform scatter over the
    // whole state family, the population must end seated on chairs 1..=n.
    let n = 16u32;
    let proto = Ranking::new(n);
    let universe = proto.universe();
    let init = AdversarialInit::uniform_random(universe);
    for seed in [11u64, 12] {
        let mut sim = AgentSimulation::from_inputs(
            proto,
            &vec![(); n as usize],
            UniformPairScheduler::new(n as usize),
        );
        let mut rng = seeded_rng(seed);
        sim.apply_adversarial_init(&init, &mut rng);
        let rep = Ranking::measure_recovery(&mut sim, 2_000_000, 1_000, &mut rng);
        assert!(rep.recovered(), "ranking must recover under seed {seed}");
        assert!(Ranking::is_permutation(&sim), "final configuration must be a permutation");
    }
}

#[test]
fn self_stab_exact_majority_stays_wrong_after_flood_init() {
    // Regression pin for the negative result: flooding the Lemma 5 majority
    // protocol with a leaderless false-verdict state freezes the population
    // on the wrong answer — it has no self-stabilization to offer.
    let ens = Ensemble::new(4, 77).legacy_offset_seeds();
    let report = ens.run_with_faults(
        |_| {
            let sim = Simulation::from_counts(majority(), [(0usize, 6), (1usize, 7)]);
            let plan = AdversarialInit::flood(LinState::new(false, false, 0));
            (sim, plan)
        },
        &true, // 7 > 6: the uncorrupted answer is "more ones"
        200_000,
    );
    assert_eq!(report.recovery_rate(), 0.0, "exact majority must NOT recover");
    let mttr = report.final_mttr();
    assert_eq!(mttr.recovered(), 0);
    assert_eq!(mttr.trials(), 4);
    for run in report.runs() {
        assert_eq!(
            run.final_segment().residual_error,
            13,
            "every agent is stuck on the flooded false verdict"
        );
    }
}

#[test]
fn effective_steps_lag_total_steps() {
    let mut sim = Simulation::from_counts(epidemic(), [(true, 1), (false, 31)]);
    let mut rng = seeded_rng(8);
    sim.run(100_000, &mut rng);
    // After convergence all interactions are no-ops: the epidemic needs at
    // most n−1 = 31 effective interactions ever.
    assert!(sim.effective_steps() <= 31);
    assert_eq!(sim.steps(), 100_000);
    assert_eq!(sim.consensus_output(), Some(&true));
}
