//! Exact analysis: decide stable computation and compute expected
//! convergence times without sampling (Theorems 6 and 11).
//!
//! Run with: `cargo run --example exact_analysis`

use population_protocols::analysis::verify::{StableComputation, Verdict};
use population_protocols::analysis::MarkovAnalysis;
use population_protocols::core::prelude::*;
use population_protocols::protocols::{majority, CountThreshold};

fn main() {
    println!("=== Exact stable-computation verdicts (Theorem 6 made concrete) ===\n");
    for ones in 0..=8u64 {
        let inputs = [(true, ones), (false, 8 - ones)];
        let a = StableComputation::analyze(CountThreshold::new(3), inputs);
        let verdict = match a.verdict() {
            Verdict::Stable(v) => format!("stable -> {v}"),
            other => format!("{other:?}"),
        };
        println!(
            "count-to-3, ones = {ones}: {verdict:<16} \
             ({} reachable configs, {} final component(s))",
            a.reachable_configs(),
            a.final_component_count()
        );
    }

    println!("\n=== Exact expected convergence times (the §6.2 Markov chain) ===\n");
    println!("majority with a one-vote margin, by population size:");
    println!("{:>4} {:>10} {:>22}", "n", "configs", "E[interactions]");
    for half in 1..=5u64 {
        let (zeros, ones) = (half, half + 1);
        let m = MarkovAnalysis::analyze(majority(), [(0usize, zeros), (1usize, ones)]);
        let t = m.expected_steps_to_commit();
        println!(
            "{:>4} {:>10} {:>22}",
            zeros + ones,
            m.graph().len(),
            t.map_or("no commitment".to_string(), |t| format!("{t:.2}"))
        );
    }

    println!("\nexact vs Monte-Carlo for n = 7 (ones = 4, zeros = 3):");
    let m = MarkovAnalysis::analyze(majority(), [(0usize, 3), (1usize, 4)]);
    let exact = m.expected_steps_to_commit().expect("majority commits");
    let trials = 4000u64;
    let mut total = 0u64;
    for seed in 0..trials {
        let mut sim = Simulation::from_counts(majority(), [(0usize, 3), (1usize, 4)]);
        let mut rng = seeded_rng(seed);
        // Run until the exact committed set is definitely entered: cheap
        // proxy — run a generous horizon and find the last output change.
        let t = sim.run_until_silent(5_000, 10_000_000, &mut rng).expect("quiesces");
        total += t;
    }
    let mc = total as f64 / trials as f64;
    println!("exact expected commit time: {exact:.2} interactions");
    println!("Monte-Carlo last-output-change (lower bound proxy): {mc:.2} interactions");
}
