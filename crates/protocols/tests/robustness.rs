//! Robustness smoke tests: which of the paper's protocols self-stabilize
//! against the `pp_core::faults` models, and which stabilize *wrong*.
//!
//! The dichotomy the paper's §8 hints at shows up sharply here:
//!
//! * Protocols whose verdict rides on a **conserved quantity** (the Lemma 5
//!   threshold/remainder constructions — exact majority, parity) have no
//!   way to notice that corruption changed the quantity: they stabilize
//!   cleanly to the *wrong* answer.
//! * Protocols whose stable configuration is **re-derivable from any
//!   state** (epidemics, approximate majority with a clear margin) recover.
//! * Leader election sits in between: it can never recover from losing
//!   every leader (no rule mints one), but churn that injects fresh
//!   initial-state agents — which are leaders — heals it.

use pp_core::faults::{Churn, CrashFaults, InteractionDrop, TransientCorruption};
use pp_core::scheduler::UniformPairScheduler;
use pp_core::{seeded_rng, AgentSimulation, Protocol, Simulation};
use pp_protocols::ext::Opinion;
use pp_protocols::{majority, parity, ApproximateMajority, LeaderElection};

#[test]
fn exact_majority_stabilizes_wrong_after_adversarial_corruption() {
    // 60 one-votes vs 40 zero-votes: majority of 1s, stable output `true`.
    let mut sim = Simulation::from_counts(majority(), [(1usize, 60), (0usize, 40)]);
    // Let it stabilize, then rewrite 50 random agents to fresh zero-vote
    // states. The verdict is carried by the conserved sum Σ count = −20;
    // the burst shifts it far positive, and nothing in the protocol can
    // detect that the sum no longer matches the true input.
    let zero_vote = majority().input(&0usize);
    let mut plan = TransientCorruption::adversarial_at(150_000, 50, zero_vote);
    let mut rng = seeded_rng(42);
    let rep = sim.run_with_faults(&mut plan, &true, 700_000, &mut rng);

    assert_eq!(rep.segments.len(), 2);
    assert!(rep.segments[0].recovered(), "pre-burst prefix stabilizes to the truth");
    assert!(!rep.recovered(), "corrupted sum can never re-derive the true majority");
    // The failure is not divergence — the protocol *stabilizes*, wrongly:
    // every agent ends up asserting the minority won.
    assert_eq!(sim.consensus_output(), Some(&false));
    assert_eq!(rep.final_segment().residual_error, sim.population());
}

#[test]
fn approximate_majority_recovers_from_small_corruption() {
    // The 3-state protocol keeps no conserved tally: a clear margin
    // re-recruits blanked agents, so modest corruption is self-healing.
    let mut sim =
        Simulation::from_counts(ApproximateMajority, [(true, 140), (false, 60)]);
    let mut plan = TransientCorruption::adversarial_at(30_000, 20, Opinion::Blank);
    let mut rng = seeded_rng(7);
    let rep = sim.run_with_faults(&mut plan, &true, 200_000, &mut rng);

    assert_eq!(rep.faults_injected, 20);
    assert!(rep.segments[0].recovered());
    assert!(rep.recovered(), "a clear majority re-converts blanked agents");
    let recovery = rep.final_segment().recovery_time().unwrap();
    assert!(recovery > 0, "the burst visibly perturbed the outputs");
}

#[test]
fn parity_stabilizes_wrong_when_corruption_flips_the_remainder() {
    // Parity (x₁ ≡ 1 mod 2) is the Presburger remainder predicate of
    // Lemma 5. 7 one-votes: odd, stable output `true`. Injecting a single
    // fresh one-vote state flips the conserved remainder; the population
    // dutifully stabilizes to `false` — correct for the damaged multiset,
    // wrong for the actual input.
    let one_vote = parity().input(&1usize);
    let mut sim = Simulation::from_counts(parity(), [(1usize, 7), (0usize, 25)]);
    let mut plan = TransientCorruption::adversarial_at(50_000, 1, one_vote);
    let mut rng = seeded_rng(19);
    let rep = sim.run_with_faults(&mut plan, &true, 400_000, &mut rng);

    assert!(rep.segments[0].recovered(), "prefix stabilizes to odd = true");
    assert!(!rep.recovered(), "flipped remainder cannot flip back");
    assert_eq!(sim.consensus_output(), Some(&false));
}

#[test]
fn leader_election_cannot_recover_from_losing_every_leader() {
    // Start already stabilized: one leader. A corruption burst that
    // demotes every agent (200 random rewrites over 32 agents, checked
    // below to have covered the leader) leaves zero leaders, and no rule
    // of δ ever mints a new one: the configuration is stable, and broken
    // forever.
    let mut sim =
        Simulation::from_states(LeaderElection, [(true, 1), (false, 31)]);
    let mut plan = TransientCorruption::adversarial_at(100, 200, false);
    let mut rng = seeded_rng(3);
    let rep = sim.run_with_faults(&mut plan, &false, 300_000, &mut rng);

    assert_eq!(rep.faults_injected, 200);
    assert_eq!(sim.count_of_state(&true), 0, "the burst demoted the unique leader");
    // All-false *is* a consensus on output `false`, so the run "recovers"
    // toward that trivial target — the point is that leadership, the
    // protocol's actual job, is unrecoverable.
    assert!(rep.recovered());
}

#[test]
fn leader_election_heals_under_churn_because_fresh_agents_lead() {
    // Churn is the one fault model leader election welcomes: a
    // factory-fresh agent takes the input map I(()) = leader. Even after
    // the population loses every leader, the next churn burst re-seeds
    // one and pairwise merging re-converges to a unique leader.
    let mut sim = Simulation::from_states(LeaderElection, [(false, 32)]);
    assert_eq!(sim.count_of_state(&true), 0, "start from the dead configuration");
    let mut plan = Churn::new(10_000, 2, true);
    let mut rng = seeded_rng(11);
    let rep = sim.run_with_faults(&mut plan, &false, 60_000, &mut rng);

    assert!(rep.faults_injected >= 10);
    assert_eq!(sim.population(), 32);
    assert_eq!(
        sim.count_of_state(&true),
        1,
        "churned-in leaders merged back down to exactly one"
    );
}

#[test]
fn exact_majority_survives_crashes_and_message_loss() {
    // §8: crashes are benign when the verdict does not depend on the lost
    // agents — with a wide margin, losing 6 random voters and dropping 30%
    // of encounters only slows stabilization down.
    let mut sim = Simulation::from_counts(majority(), [(1usize, 70), (0usize, 30)]);
    let mut plan = (CrashFaults::at(5_000, 6), InteractionDrop::new(0.3));
    let mut rng = seeded_rng(23);
    let rep = sim.run_with_faults(&mut plan, &true, 900_000, &mut rng);

    assert_eq!(sim.population(), 94);
    assert_eq!(rep.faults_injected, 6);
    assert!(rep.dropped > 200_000, "≈30% of slots should drop");
    assert!(rep.recovered(), "wide-margin majority shrugs off crashes and loss");
}

#[test]
fn agent_engine_majority_recovers_from_uniform_corruption() {
    // Same story on the per-agent engine: scramble 8 of 64 voters'
    // memories mid-run; the surviving margin re-stabilizes the answer.
    let n = 64;
    let inputs: Vec<usize> = (0..n).map(|i| usize::from(i % 4 != 0)).collect(); // 48 ones
    let mut sim = AgentSimulation::from_inputs(
        majority(),
        &inputs,
        UniformPairScheduler::new(n),
    );
    let mut plan = TransientCorruption::uniform_at(40_000, 8);
    let mut rng = seeded_rng(29);
    let rep = sim.run_with_faults(&mut plan, &true, 400_000, &mut rng);

    assert_eq!(rep.faults_injected, 8);
    assert_eq!(rep.starved, 0);
    assert!(rep.recovered(), "margin 48−16 absorbs 8 scrambled memories");
    assert_eq!(sim.consensus_output(), Some(&true));
}
