//! Strongly connected components (Tarjan, iterative) and final-component
//! detection.
//!
//! Lemma 1 of the paper: the configurations occurring infinitely often in a
//! fair computation form exactly a *final* strongly connected component of
//! the transition graph (one with no edges leaving it). Deciding stable
//! computation therefore reduces to inspecting final components.

/// The strongly connected components of a directed graph given by
/// successor lists.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` is the component index of node `v`; component indices
    /// are in *reverse topological order* (an edge `u → v` across
    /// components has `component[u] > component[v]`).
    pub component: Vec<usize>,
    /// Members of each component.
    pub members: Vec<Vec<usize>>,
    /// Whether each component is final (no edge leaves it).
    pub is_final: Vec<bool>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no components (only for the empty graph).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Indices of the final components.
    pub fn final_components(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&c| self.is_final[c])
    }

    /// Whether node `v` belongs to a final component (i.e. is a *final
    /// configuration* in the paper's sense).
    pub fn is_final_node(&self, v: usize) -> bool {
        self.is_final[self.component[v]]
    }
}

/// Computes the SCC decomposition from per-node successor lists
/// (iterative Tarjan — no recursion, safe for deep graphs).
pub fn tarjan_slices(succ: &[Vec<usize>]) -> SccDecomposition {
    let n = succ.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNVISITED; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Explicit DFS stack: (node, next-successor-position).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    // v is the root of a new component.
                    let c = members.len();
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component[w] = c;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(comp);
                }
            }
        }
    }

    // Finality: no edge leaves the component.
    let mut is_final = vec![true; members.len()];
    for (v, outs) in succ.iter().enumerate() {
        for &w in outs {
            if component[v] != component[w] {
                is_final[component[v]] = false;
            }
        }
    }

    SccDecomposition { component, members, is_final }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_no_edges() {
        let d = tarjan_slices(&[vec![]]);
        assert_eq!(d.len(), 1);
        assert!(d.is_final_node(0));
    }

    #[test]
    fn chain_has_singleton_components_with_final_sink() {
        let succ = vec![vec![1], vec![2], vec![]];
        let d = tarjan_slices(&succ);
        assert_eq!(d.len(), 3);
        assert!(d.is_final_node(2));
        assert!(!d.is_final_node(0));
        assert!(!d.is_final_node(1));
        // Edge u→v across components: component[u] > component[v].
        assert!(d.component[0] > d.component[1]);
        assert!(d.component[1] > d.component[2]);
    }

    #[test]
    fn cycle_is_one_component() {
        let succ = vec![vec![1], vec![2], vec![0]];
        let d = tarjan_slices(&succ);
        assert_eq!(d.len(), 1);
        assert!(d.is_final_node(0));
        assert_eq!(d.members[0].len(), 3);
    }

    #[test]
    fn cycle_with_escape_is_not_final() {
        // 0 ↔ 1, plus 1 → 2 (sink).
        let succ = vec![vec![1], vec![0, 2], vec![]];
        let d = tarjan_slices(&succ);
        assert_eq!(d.len(), 2);
        assert!(!d.is_final_node(0));
        assert!(!d.is_final_node(1));
        assert!(d.is_final_node(2));
    }

    #[test]
    fn two_final_components() {
        // 0 → 1 (sink), 0 → 2 ↔ 3.
        let succ = vec![vec![1, 2], vec![], vec![3], vec![2]];
        let d = tarjan_slices(&succ);
        assert_eq!(d.final_components().count(), 2);
        assert!(d.is_final_node(1));
        assert!(d.is_final_node(2));
        assert!(d.is_final_node(3));
        assert!(!d.is_final_node(0));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node chain: recursion would blow the stack; iteration must not.
        let n = 100_000;
        let succ: Vec<Vec<usize>> = (0..n).map(|i| if i + 1 < n { vec![i + 1] } else { vec![] }).collect();
        let d = tarjan_slices(&succ);
        assert_eq!(d.len(), n);
        assert!(d.is_final_node(n - 1));
    }
}
