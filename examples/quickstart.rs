//! Quickstart: the paper's opening scenario (§1).
//!
//! A flock of birds carries temperature sensors. Two questions:
//!
//! 1. Do at least five birds have elevated temperatures? (count-to-5)
//! 2. Do at least 5% of the birds have elevated temperatures?
//!    (compiled from the Presburger formula `20·hot ≥ hot + normal`)
//!
//! Run with: `cargo run --example quickstart`

use population_protocols::core::prelude::*;
use population_protocols::presburger::{compile::compile_parsed, parse};
use population_protocols::protocols::CountThreshold;

fn main() {
    let mut rng = seeded_rng(2004);

    // ---------------------------------------------------------------
    // 1. Count-to-five: 6 hot birds among 200.
    // ---------------------------------------------------------------
    let flock_size = 200u64;
    let hot_birds = 6u64;
    let mut sim = Simulation::from_counts(
        CountThreshold::new(5),
        [(true, hot_birds), (false, flock_size - hot_birds)],
    );
    let report = sim.measure_stabilization(&true, 3_000_000, &mut rng);
    println!("=== Are at least 5 birds hot? (count-to-5 protocol) ===");
    println!("flock size:          {flock_size}");
    println!("hot birds:           {hot_birds}");
    println!(
        "stabilized:          {} (after {} interactions)",
        report.converged(),
        report.stabilized_at.unwrap_or(0),
    );
    println!("every sensor reads:  {:?}\n", sim.consensus_output());

    // ---------------------------------------------------------------
    // 2. At least 5%? Compile the Presburger predicate from §4.2.
    // ---------------------------------------------------------------
    let parsed = parse("20 * hot >= hot + normal").expect("formula parses");
    let protocol = compile_parsed(&parsed).expect("formula compiles");
    println!("=== Are at least 5% of the birds hot? (compiled Presburger) ===");
    println!("formula:             20*hot >= hot + normal");
    println!(
        "compiled atoms:      {} (Lemma 5 threshold/remainder protocols)",
        protocol.atoms().len()
    );

    for hot in [9u64, 10u64] {
        let normal = flock_size - hot;
        let expected = protocol.eval(&[hot, normal]);
        let mut sim = Simulation::from_counts(
            protocol.clone(),
            [(parsed.index_of("hot").unwrap(), hot), (parsed.index_of("normal").unwrap(), normal)],
        );
        let report = sim.measure_stabilization(&expected, 3_000_000, &mut rng);
        println!(
            "hot = {hot:3} / {flock_size}: predicate = {expected}, \
             stabilized = {} at interaction {}",
            report.converged(),
            report.stabilized_at.unwrap_or(0),
        );
    }
}
