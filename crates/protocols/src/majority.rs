//! Majority and parity as instances of the Lemma 5 atoms.
//!
//! The paper names both among the Presburger-definable predicates its
//! protocols cover (§2, §4.2): *majority* is the threshold
//! `x₀ − x₁ < 0` and *parity* is the remainder `x₁ ≡ 1 (mod 2)`.

use crate::linear::{RemainderProtocol, ThresholdProtocol};

/// The majority predicate: "strictly more agents have input 1 than 0",
/// i.e. the Lemma 5 threshold `x₀ − x₁ < 0`.
///
/// Input symbols: `0usize` for a `0`-vote, `1usize` for a `1`-vote.
///
/// # Example
///
/// ```
/// use pp_core::prelude::*;
/// use pp_protocols::majority;
///
/// let mut sim = Simulation::from_counts(majority(), [(0usize, 10), (1usize, 11)]);
/// let mut rng = seeded_rng(8);
/// assert!(sim.measure_stabilization(&true, 400_000, &mut rng).converged());
/// ```
pub fn majority() -> ThresholdProtocol {
    ThresholdProtocol::new(vec![1, -1], 0).expect("static coefficients are valid")
}

/// The parity predicate: "the number of agents with input 1 is odd",
/// i.e. the Lemma 5 remainder `x₁ ≡ 1 (mod 2)`.
///
/// Input symbols: `0usize` and `1usize`.
///
/// # Example
///
/// ```
/// use pp_protocols::parity;
///
/// assert!(parity().eval(&[4, 3]));
/// assert!(!parity().eval(&[5, 2]));
/// ```
pub fn parity() -> RemainderProtocol {
    RemainderProtocol::new(vec![0, 1], 1, 2).expect("static coefficients are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{seeded_rng, Simulation};

    #[test]
    fn majority_ground_truth() {
        let m = majority();
        assert!(m.eval(&[3, 4]));
        assert!(!m.eval(&[4, 4]));
        assert!(!m.eval(&[5, 4]));
    }

    #[test]
    fn parity_ground_truth() {
        let p = parity();
        assert!(p.eval(&[0, 1]));
        assert!(p.eval(&[9, 7]));
        assert!(!p.eval(&[9, 8]));
        assert!(!p.eval(&[2, 0]));
    }

    #[test]
    fn tie_is_not_majority() {
        let mut sim = Simulation::from_counts(majority(), [(0usize, 8), (1usize, 8)]);
        let mut rng = seeded_rng(12);
        let rep = sim.measure_stabilization(&false, 200_000, &mut rng);
        assert!(rep.converged());
    }

    #[test]
    fn parity_stabilizes() {
        let mut rng = seeded_rng(13);
        let mut odd = Simulation::from_counts(parity(), [(0usize, 6), (1usize, 7)]);
        assert!(odd.measure_stabilization(&true, 200_000, &mut rng).converged());
        let mut even = Simulation::from_counts(parity(), [(0usize, 6), (1usize, 8)]);
        assert!(even.measure_stabilization(&false, 200_000, &mut rng).converged());
    }
}
