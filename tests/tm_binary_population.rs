//! Theorem 10 beyond unary: the binary-increment TM (alphabet size 3, so
//! base-3 Gödel counters) executed by a population.

use population_protocols::core::seeded_rng;
use population_protocols::machines::programs;
use population_protocols::random::tm_sim::TmSimOutcome;
use population_protocols::random::PopulationTm;

/// LSB-first binary encoding with digits '0' = 1, '1' = 2.
fn encode(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    if v == 0 {
        out.push(1);
    }
    while v > 0 {
        out.push(if v & 1 == 1 { 2 } else { 1 });
        v >>= 1;
    }
    out
}

fn decode(tape: &[u8]) -> u64 {
    tape.iter()
        .enumerate()
        .map(|(i, &d)| if d == 2 { 1u64 << i } else { 0 })
        .sum()
}

#[test]
fn binary_increment_on_population() {
    let tm = programs::tm_binary_increment();
    // Base 3, values up to 7 need 3 digits → Gödel numbers < 27;
    // capacity (n−2)·M = 28·2 = 56 gives headroom for the carry pass.
    let sim = PopulationTm::new(&tm, 30, 3, 2);
    assert!(sim.max_tape_cells() >= 3);
    let mut rng = seeded_rng(21);
    let mut clean = 0u32;
    let trials = [0u64, 1, 2, 3, 5];
    for &v in &trials {
        let input = encode(v);
        let reference = sim.reference_tape(&input, 1_000_000);
        match sim.run(&input, u64::MAX / 2, &mut rng) {
            TmSimOutcome::Halted { tape, silent_errors, .. } => {
                if silent_errors == 0 {
                    assert_eq!(tape, reference, "v = {v}");
                    assert_eq!(decode(&tape), v + 1, "v = {v}");
                    clean += 1;
                }
            }
            other => panic!("v = {v}: {other:?}"),
        }
    }
    assert!(clean >= 2, "expected some clean runs: {clean}/{}", trials.len());
}
