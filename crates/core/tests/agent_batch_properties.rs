//! Correctness properties of the batched / epoch-sharded agent engine
//! (`pp_core::agent_batch`):
//!
//! * `run_batched` is **byte-identical** to the sequential `step` loop on
//!   every built-in sampler — same RNG stream, same final per-agent states,
//!   same counters (a stronger claim than the count engine's distributional
//!   equivalence, because agent-engine batching reorders nothing);
//! * `run_epochs` is byte-identical to `run_batched` at *any* thread count;
//! * under crashes, the masked `CsrScheduler` path agrees in distribution
//!   (total-variation distance) with rejection sampling on the same graph,
//!   mirroring `batch_properties.rs`;
//! * starvation surfaces as `PopulationError::StarvedSchedule` without
//!   consuming randomness.

use std::collections::HashMap;

use pp_core::scheduler::{
    BatchPairSampler, CsrScheduler, EdgeListScheduler, UniformPairScheduler,
};
use pp_core::{
    seeded_rng, AgentSimulation, FnProtocol, PopulationError, Protocol,
};
use proptest::prelude::*;
use rand::RngCore;

/// Three-state approximate majority: transitions in every direction, so the
/// frozen δ-table sees a rich rule set.
fn approx_majority() -> impl Protocol<State = u8, Input = u8, Output = u8> {
    FnProtocol::new(
        |&x: &u8| x,
        |&q: &u8| q,
        |&p: &u8, &q: &u8| match (p, q) {
            (0, 1) => (0, 2),
            (1, 0) => (1, 2),
            (0, 2) => (0, 0),
            (1, 2) => (1, 1),
            _ => (p, q),
        },
    )
}

fn majority_inputs(n: usize) -> Vec<u8> {
    (0..n).map(|i| u8::from(i % 3 == 0)).collect()
}

/// Both directions around a ring of `n` agents.
fn ring_edges(n: u32) -> Vec<(u32, u32)> {
    (0..n).flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)]).collect()
}

/// Asserts that a batched run over `sampler` matches the sequential loop
/// byte for byte: same states, same counters, same RNG position.
fn assert_batched_matches_sequential<S: BatchPairSampler + Clone>(
    n: usize,
    sampler: S,
    steps: u64,
    seed: u64,
) -> Result<(), TestCaseError> {
    let inputs = majority_inputs(n);
    let mut seq = AgentSimulation::from_inputs(approx_majority(), &inputs, sampler.clone());
    let mut bat = AgentSimulation::from_inputs(approx_majority(), &inputs, sampler);
    let mut rng_a = seeded_rng(seed);
    let mut rng_b = seeded_rng(seed);
    for _ in 0..steps {
        seq.step(&mut rng_a);
    }
    bat.run_batched(steps, &mut rng_b).expect("no crashes, cannot starve");
    prop_assert_eq!(seq.agents(), bat.agents());
    prop_assert_eq!(seq.steps(), bat.steps());
    prop_assert_eq!(seq.effective_steps(), bat.effective_steps());
    prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_batched_matches_sequential_on_uniform(
        seed in 0u64..1_000,
        n in 3usize..40,
        steps in 1u64..3_000,
    ) {
        assert_batched_matches_sequential(n, UniformPairScheduler::new(n), steps, seed)?;
    }

    #[test]
    fn prop_batched_matches_sequential_on_edge_list(
        seed in 0u64..1_000,
        n in 3u32..40,
        steps in 1u64..3_000,
    ) {
        let sampler = EdgeListScheduler::new(n as usize, ring_edges(n));
        assert_batched_matches_sequential(n as usize, sampler, steps, seed)?;
    }

    #[test]
    fn prop_batched_matches_sequential_on_csr(
        seed in 0u64..1_000,
        n in 3u32..40,
        steps in 1u64..3_000,
    ) {
        let sampler = CsrScheduler::new(n as usize, &ring_edges(n));
        assert_batched_matches_sequential(n as usize, sampler, steps, seed)?;
    }

    #[test]
    fn prop_epoch_sharded_is_thread_count_invariant(
        seed in 0u64..1_000,
        n in 4u32..48,
        steps in 1u64..6_000,
        threads in 1usize..9,
    ) {
        let inputs = majority_inputs(n as usize);
        let mut base = AgentSimulation::from_inputs(
            approx_majority(),
            &inputs,
            CsrScheduler::new(n as usize, &ring_edges(n)),
        );
        let mut rng = seeded_rng(seed);
        base.run_batched(steps, &mut rng).unwrap();
        let base_word = rng.next_u64();

        let mut sharded = AgentSimulation::from_inputs(
            approx_majority(),
            &inputs,
            CsrScheduler::new(n as usize, &ring_edges(n)),
        );
        let mut rng = seeded_rng(seed);
        sharded.run_epochs(steps, threads, &mut rng).unwrap();
        prop_assert_eq!(base.agents(), sharded.agents(), "threads={}", threads);
        prop_assert_eq!(base.steps(), sharded.steps());
        prop_assert_eq!(base.effective_steps(), sharded.effective_steps());
        prop_assert_eq!(base_word, rng.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn prop_starved_schedule_errors_without_consuming_randomness(
        seed in 0u64..1_000,
        pad in 2u32..8,
    ) {
        // Two components joined by nothing: crash one side's endpoints and
        // only edgeless agents remain live.
        let n = 4 + pad;
        let edges = [(0u32, 1u32), (1, 0), (2, 3), (3, 2)];
        let inputs = majority_inputs(n as usize);
        let mut sim = AgentSimulation::from_inputs(
            approx_majority(),
            &inputs,
            EdgeListScheduler::new(n as usize, edges.to_vec()),
        );
        for a in 0..4u32 {
            sim.crash_agent(a);
        }
        let mut rng = seeded_rng(seed);
        let mut witness = rng.clone();
        let live = u64::from(n) - 4;
        prop_assert_eq!(
            sim.run_batched(64, &mut rng),
            Err(PopulationError::StarvedSchedule { live })
        );
        prop_assert_eq!(
            sim.try_step_transitions(&mut rng),
            Err(PopulationError::StarvedSchedule { live })
        );
        prop_assert_eq!(witness.next_u64(), rng.next_u64());
    }
}

/// Runs `trials` copies of `k` interactions with 2 crashed agents and
/// histograms the final per-agent state vectors.
fn crashed_run_histogram<S: BatchPairSampler + Clone>(
    sampler: S,
    n: usize,
    k: u64,
    trials: u64,
    seed_base: u64,
) -> HashMap<Vec<u32>, u64> {
    let mut hist: HashMap<Vec<u32>, u64> = HashMap::new();
    for t in 0..trials {
        let mut sim = AgentSimulation::from_inputs(
            approx_majority(),
            &majority_inputs(n),
            sampler.clone(),
        );
        sim.crash_agent(1);
        sim.crash_agent(4);
        let mut rng = seeded_rng(seed_base + t);
        sim.run_batched(k, &mut rng).expect("live edges remain");
        let key: Vec<u32> = sim.agents().iter().map(|s| s.0).collect();
        *hist.entry(key).or_insert(0) += 1;
    }
    hist
}

/// Total-variation distance between two empirical distributions.
fn tv_distance(a: &HashMap<Vec<u32>, u64>, b: &HashMap<Vec<u32>, u64>, trials: u64) -> f64 {
    let mut keys: Vec<&Vec<u32>> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    let m = trials as f64;
    keys.iter()
        .map(|k| {
            let pa = a.get(*k).copied().unwrap_or(0) as f64 / m;
            let pb = b.get(*k).copied().unwrap_or(0) as f64 / m;
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0
}

/// Under crashes the masked CSR sampler redraws nothing (its live-edge view
/// pre-conditions every draw) while the edge-list sampler rejects; the two
/// must still agree in distribution over trajectories — per live step, both
/// are uniform over live edges.
#[test]
fn masked_csr_matches_rejection_sampling_in_distribution() {
    let n = 8usize;
    let edges = ring_edges(n as u32);
    let (k, trials) = (6u64, 6_000u64);
    let masked =
        crashed_run_histogram(CsrScheduler::new(n, &edges), n, k, trials, 3_000_000);
    let rejection = crashed_run_histogram(
        EdgeListScheduler::new(n, edges.clone()),
        n,
        k,
        trials,
        11_000_000,
    );
    let tv = tv_distance(&masked, &rejection, trials);
    // Empirical-vs-empirical TV noise at 6000 trials over this support is
    // ≈ 0.05; a masking bug (wrong live-edge set or weighting) shifts whole
    // trajectory probabilities by far more.
    assert!(tv < 0.10, "TV distance {tv:.4} between masked and rejection");
}

/// The masked sampler must also agree with rejection *step for step* on the
/// number of live draws: crashing and un-starving around a cut vertex.
#[test]
fn mask_live_tracks_crash_sequence() {
    let n = 6usize;
    let edges = ring_edges(n as u32);
    let mut sim = AgentSimulation::from_inputs(
        approx_majority(),
        &majority_inputs(n),
        CsrScheduler::new(n, &edges),
    );
    let mut rng = seeded_rng(5);
    sim.run_batched(100, &mut rng).unwrap();
    assert!(sim.crash_agent(0));
    assert!(sim.crash_agent(2));
    sim.run_batched(100, &mut rng).unwrap();
    // Every interaction after the crashes joined two live agents.
    for a in [0u32, 2] {
        assert!(sim.is_crashed(a));
    }
    assert_eq!(sim.steps(), 200);
    // Crash until only a disconnected pair survives: 1 is walled off by the
    // crashed 0 and 2, so live edges vanish even with 3 agents live.
    assert!(sim.crash_agent(4));
    assert_eq!(
        sim.run_batched(1, &mut rng),
        Err(PopulationError::StarvedSchedule { live: 3 })
    );
}
