//! The unified, serializable run API: [`RunSpec`] → [`RunReport`].
//!
//! Historically every way of running a protocol had its own entry point —
//! [`Simulation::run_until_consensus`], [`Simulation::measure_stabilization`]
//! (and its `_batched` twin), [`AgentSimulation::measure_stabilization`],
//! [`Simulation::run_with_faults`](crate::faults),
//! [`Ensemble::map`](crate::ensemble::Ensemble) and friends — and every
//! front end (the `pp` CLI, each bench, ad-hoc examples) grew its own
//! plumbing from arguments to one of those methods. `RunSpec` collapses
//! that combinatorial surface into **one serializable request type**:
//!
//! * a protocol reference (a registry name or a Presburger formula),
//! * a population (ordered symbol → count pairs; the order is semantic —
//!   it fixes the state-interning order and therefore the RNG stream),
//! * a seed and seed mode,
//! * an engine selection (sequential / batched / agents-on-a-topology /
//!   mean-field),
//! * a trial count and thread count (1 trial = a single deterministic run,
//!   more = a [`Ensemble`] with byte-identical
//!   reports at any thread count),
//! * an optional fault plan, a stop condition, and a probe request.
//!
//! Because the spec is plain data, it can be POSTed to the `pp-server`
//! HTTP service, diffed, cached by its canonical JSON, and replayed:
//! **a seeded spec is byte-reproducible** — the same spec produces the
//! same [`RunReport::to_json`] bytes on any fresh process at any thread
//! count, the same guarantee the ensemble executor already gives.
//!
//! This module owns the pieces that only need `pp-core`: the spec and
//! report types, a dependency-free JSON codec, and the dispatchers
//! [`run_counts`] (count engine: sequential/batched, single/ensemble,
//! faulted or not) and [`run_agents`] (agent engine on an arbitrary
//! scheduler). Resolution of protocol *references* (registry names,
//! Presburger compilation, topology construction, mean-field integration)
//! lives one layer up in the `pp-server` crate, which routes every request
//! — HTTP, CLI, or bench — through `pp_server::api::execute`.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::{seeded_rng, AgentSimulation, Simulation};
use crate::ensemble::{Ensemble, EnsembleReport, SeedMode};
use crate::faults::{
    CorruptionMode, CrashFaults, FaultCtx, FaultPlan, InteractionDrop, Mttr,
    TransientCorruption,
};
use crate::protocol::Protocol;
use crate::scheduler::PairSampler;

// ---------------------------------------------------------------------------
// A minimal JSON value (parser + deterministic writer)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects preserve insertion order (ordering is
/// semantic for [`RunSpec::population`] and keeps renderings canonical).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; u64 counts round-trip exactly up
    /// to 2⁵³, far beyond any population this crate materializes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Deterministic rendering: fields in stored order, shortest
    /// round-trip floats, no whitespace.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (strict: one value, nothing but whitespace
/// after it).
///
/// # Errors
///
/// Returns [`SpecError::Parse`] with a byte offset and a short reason.
pub fn parse_json(text: &str) -> Result<JsonValue, SpecError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(SpecError::parse(pos, "trailing characters after JSON value"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, SpecError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(SpecError::parse(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(s) => s,
                    _ => return Err(SpecError::parse(*pos, "object key must be a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(SpecError::parse(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(SpecError::parse(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut xs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(xs));
            }
            loop {
                xs.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(xs));
                    }
                    _ => return Err(SpecError::parse(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err(SpecError::parse(*pos, "unterminated string")),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(JsonValue::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{0008}'),
                            Some(b'f') => s.push('\u{000c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or_else(|| SpecError::parse(*pos, "bad \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| SpecError::parse(*pos, "bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| SpecError::parse(*pos, "bad \\u escape"))?;
                                // Surrogates are replaced, not rejected: specs
                                // never contain them, and lossy beats panicky.
                                s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(SpecError::parse(*pos, "bad escape")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 is copied through verbatim.
                        let start = *pos;
                        let mut end = *pos + 1;
                        if c >= 0x80 {
                            while end < b.len() && b[end] & 0xc0 == 0x80 {
                                end += 1;
                            }
                        }
                        let chunk = std::str::from_utf8(&b[start..end])
                            .map_err(|_| SpecError::parse(*pos, "invalid UTF-8"))?;
                        s.push_str(chunk);
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| SpecError::parse(start, "invalid number"))
        }
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    v: JsonValue,
) -> Result<JsonValue, SpecError> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(SpecError::parse(*pos, "invalid literal"))
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A structured, HTTP-mappable error: everything that can go wrong between
/// a request body and a [`RunReport`]. The server never panics on bad
/// input — it renders one of these as a `pp-error/v1` JSON body instead.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The request body is not valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// Short reason.
        detail: String,
    },
    /// A required field is missing.
    MissingField(&'static str),
    /// A field holds a value of the wrong shape.
    BadField {
        /// The offending field.
        field: String,
        /// What was expected.
        detail: String,
    },
    /// A field name the spec does not define (typo guard).
    UnknownField(String),
    /// The protocol name is not in the registry.
    UnknownProtocol(String),
    /// A population symbol the protocol does not define.
    UnknownSymbol {
        /// The offending symbol.
        symbol: String,
        /// The symbols the protocol accepts.
        known: Vec<String>,
    },
    /// Fewer than 2 agents.
    PopulationTooSmall(u64),
    /// The population exceeds the server's materialization cap.
    PopulationTooLarge {
        /// Requested population.
        n: u64,
        /// The configured cap.
        max: u64,
    },
    /// Formula parsing or compilation failed.
    Compile(String),
    /// The engine/stop/fault combination is not supported.
    Unsupported(String),
    /// An internal invariant failed (maps to HTTP 500).
    Internal(String),
}

impl SpecError {
    fn parse(offset: usize, detail: &str) -> Self {
        SpecError::Parse { offset, detail: detail.to_string() }
    }

    /// Stable machine-readable code (the `code` field of `pp-error/v1`).
    pub fn code(&self) -> &'static str {
        match self {
            SpecError::Parse { .. } => "parse_error",
            SpecError::MissingField(_) => "missing_field",
            SpecError::BadField { .. } => "bad_field",
            SpecError::UnknownField(_) => "unknown_field",
            SpecError::UnknownProtocol(_) => "unknown_protocol",
            SpecError::UnknownSymbol { .. } => "unknown_symbol",
            SpecError::PopulationTooSmall(_) => "population_too_small",
            SpecError::PopulationTooLarge { .. } => "population_too_large",
            SpecError::Compile(_) => "compile_error",
            SpecError::Unsupported(_) => "unsupported",
            SpecError::Internal(_) => "internal",
        }
    }

    /// The HTTP status the error maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            SpecError::PopulationTooLarge { .. } => 413,
            SpecError::Internal(_) => 500,
            _ => 400,
        }
    }

    /// The `pp-error/v1` JSON body.
    pub fn to_json(&self) -> String {
        let mut obj = vec![
            ("schema".to_string(), JsonValue::Str("pp-error/v1".to_string())),
            ("code".to_string(), JsonValue::Str(self.code().to_string())),
            ("error".to_string(), JsonValue::Str(self.to_string())),
        ];
        if let SpecError::UnknownSymbol { known, .. } = self {
            obj.push((
                "known_symbols".to_string(),
                JsonValue::Arr(known.iter().map(|s| JsonValue::Str(s.clone())).collect()),
            ));
        }
        JsonValue::Obj(obj).render()
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { offset, detail } => {
                write!(f, "invalid JSON at byte {offset}: {detail}")
            }
            SpecError::MissingField(name) => write!(f, "missing field {name:?}"),
            SpecError::BadField { field, detail } => {
                write!(f, "bad value for {field:?}: {detail}")
            }
            SpecError::UnknownField(name) => write!(f, "unknown field {name:?}"),
            SpecError::UnknownProtocol(name) => write!(f, "unknown protocol {name:?}"),
            SpecError::UnknownSymbol { symbol, .. } => {
                write!(f, "variable {symbol:?} does not occur in the protocol")
            }
            SpecError::PopulationTooSmall(n) => {
                write!(f, "population must have at least 2 agents (got {n})")
            }
            SpecError::PopulationTooLarge { n, max } => {
                write!(f, "population {n} exceeds the materialization cap {max}")
            }
            SpecError::Compile(detail) => write!(f, "{detail}"),
            SpecError::Unsupported(detail) => write!(f, "unsupported request: {detail}"),
            SpecError::Internal(detail) => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------------

/// How the spec names its protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolRef {
    /// A registry name (resolved by `pp-server`), with optional integer
    /// parameters such as `count-to-k`'s `k`.
    Name {
        /// The registry name.
        name: String,
        /// Named integer parameters.
        params: Vec<(String, u64)>,
    },
    /// A Presburger formula, compiled through the `compile(formula)` seam
    /// (and cached by its spec key).
    Formula(String),
}

/// Which engine executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSel {
    /// One interaction at a time on the count configuration.
    Sequential,
    /// The Θ(√n)-per-sweep batched count engine.
    Batched,
    /// Per-agent simulation on an interaction topology (Theorem 7 wrap).
    Agents,
    /// The fluid-limit ODE fast path (`pp-analysis::meanfield`).
    MeanField,
}

impl EngineSel {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            EngineSel::Sequential => "sequential",
            EngineSel::Batched => "batched",
            EngineSel::Agents => "agents",
            EngineSel::MeanField => "mean-field",
        }
    }
}

/// The interaction topology for [`EngineSel::Agents`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The complete graph.
    Complete,
    /// An undirected line.
    Line,
    /// An undirected cycle.
    Cycle,
    /// A star.
    Star,
    /// A connected Erdős–Rényi sample, drawn from `seeded_rng(graph_seed)`.
    Random {
        /// Edge probability.
        p: f64,
        /// Seed of the graph-construction RNG (independent of the run seed).
        graph_seed: u64,
    },
    /// A 2-torus on the CSR stencil path (`w·h` must equal `n`).
    Torus2d {
        /// Width.
        w: u32,
        /// Height.
        h: u32,
    },
    /// A 3-torus on the CSR stencil path (`w·h·d` must equal `n`).
    Torus3d {
        /// Width.
        w: u32,
        /// Height.
        h: u32,
        /// Depth.
        d: u32,
    },
}

impl TopologySpec {
    /// The wire name of the kind.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Complete => "complete",
            TopologySpec::Line => "line",
            TopologySpec::Cycle => "cycle",
            TopologySpec::Star => "star",
            TopologySpec::Random { .. } => "random",
            TopologySpec::Torus2d { .. } => "torus2d",
            TopologySpec::Torus3d { .. } => "torus3d",
        }
    }
}

/// When a run stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Measure stabilization to the ground-truth output over the horizon
    /// (the default; reports `stabilized_at` and the confirmed tail).
    Stabilization,
    /// Stop at first output consensus (sequential engine only).
    Consensus,
    /// Run exactly `horizon` interactions and report the output histogram.
    FixedSteps,
}

impl StopCondition {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            StopCondition::Stabilization => "stabilization",
            StopCondition::Consensus => "consensus",
            StopCondition::FixedSteps => "fixed",
        }
    }
}

/// How trial seeds derive from the master seed (mirrors
/// [`SeedMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedModeSpec {
    /// SplitMix64 seed splitting (the default).
    #[default]
    Split,
    /// Legacy `master + trial` offsets (kept for benches pinned to the
    /// historical streams).
    Offset,
}

/// Declarative fault plan: crash bursts, uniform corruption bursts, and an
/// interaction-drop probability, composed in that order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// `(slot, count)` crash bursts.
    pub crash: Vec<(u64, u64)>,
    /// `(slot, count)` uniform-corruption bursts.
    pub corrupt: Vec<(u64, u64)>,
    /// Probability that any interaction slot is dropped.
    pub drop: f64,
}

impl FaultSpec {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crash.is_empty() && self.corrupt.is_empty() && self.drop == 0.0
    }

    /// Materializes the plan for a protocol with state type `S`.
    pub fn build_plan<S: Clone>(&self) -> SpecFaultPlan<S> {
        SpecFaultPlan {
            crash: CrashFaults::schedule(
                self.crash.iter().map(|&(t, k)| (t, k)).collect(),
            ),
            corrupt: TransientCorruption::schedule(
                self.corrupt.iter().map(|&(t, k)| (t, k)).collect(),
                CorruptionMode::UniformKnown,
            ),
            drop: InteractionDrop::new(self.drop),
        }
    }
}

/// The composed fault plan a [`FaultSpec`] materializes: crashes, then
/// uniform corruption, then drops.
#[derive(Debug, Clone)]
pub struct SpecFaultPlan<S> {
    crash: CrashFaults,
    corrupt: TransientCorruption<S>,
    drop: InteractionDrop,
}

impl<S: Clone> FaultPlan<S> for SpecFaultPlan<S> {
    fn inject(
        &mut self,
        step: u64,
        ctx: &mut dyn FaultCtx<S>,
        rng: &mut dyn rand::RngCore,
    ) -> u64 {
        self.crash.inject(step, ctx, rng) + self.corrupt.inject(step, ctx, rng)
    }

    fn drop_probability(&mut self, step: u64) -> f64 {
        FaultPlan::<S>::drop_probability(&mut self.drop, step)
    }
}

/// What the run streams while it executes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeSpec {
    /// Stream JSON-Lines interaction events
    /// ([`JsonlSink`](crate::observe::JsonlSink)); single-trial count
    /// engines only.
    pub jsonl: bool,
    /// Event thinning stride for the JSONL stream (≥ 1).
    pub stride: u64,
}

/// Mean-field knobs ([`EngineSel::MeanField`] only).
#[derive(Debug, Clone, PartialEq)]
pub struct MeanFieldSpec {
    /// Integration horizon in parallel time `τ`.
    pub horizon: f64,
    /// Integrate the linear-noise covariance alongside the mean.
    pub diffusion: bool,
    /// Evaluate the problem at this population instead of the spec's
    /// materialized one (the `n = 10¹⁵` query; exempt from the cap).
    pub population: Option<u64>,
    /// Threshold for `predicted_stabilization_interactions`.
    pub eps: f64,
}

impl Default for MeanFieldSpec {
    fn default() -> Self {
        Self { horizon: 200.0, diffusion: false, population: None, eps: 0.01 }
    }
}

/// The unified run request. See the [module docs](self) for the design;
/// construct with [`RunSpec::new`] + builder methods, or parse a request
/// body with [`RunSpec::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// What to run.
    pub protocol: ProtocolRef,
    /// Ordered `(symbol, count)` pairs. Order is semantic: it fixes the
    /// state-interning order, hence the RNG stream, hence the bytes.
    pub population: Vec<(String, u64)>,
    /// Master seed.
    pub seed: u64,
    /// Trial-seed derivation.
    pub seed_mode: SeedModeSpec,
    /// Which engine runs it.
    pub engine: EngineSel,
    /// Topology for the agents engine (`None` elsewhere).
    pub topology: Option<TopologySpec>,
    /// Trials: 1 = single run, > 1 = deterministic ensemble.
    pub trials: u64,
    /// Worker threads for ensembles (0 = the executor's default).
    pub threads: usize,
    /// Interaction horizon (`None` = `200·n²·ln n`, the CLI default).
    pub horizon: Option<u64>,
    /// Stop condition.
    pub stop: StopCondition,
    /// Optional fault plan.
    pub faults: Option<FaultSpec>,
    /// Probe / streaming request.
    pub probe: ProbeSpec,
    /// Mean-field knobs.
    pub mean_field: Option<MeanFieldSpec>,
}

impl RunSpec {
    /// A single-trial sequential stabilization run of `protocol` on
    /// `population` with the given seed — the smallest useful spec.
    pub fn new(protocol: ProtocolRef, population: Vec<(String, u64)>, seed: u64) -> Self {
        Self {
            protocol,
            population,
            seed,
            seed_mode: SeedModeSpec::Split,
            engine: EngineSel::Sequential,
            topology: None,
            trials: 1,
            threads: 0,
            horizon: None,
            stop: StopCondition::Stabilization,
            faults: None,
            probe: ProbeSpec::default(),
            mean_field: None,
        }
    }

    /// Total population size.
    pub fn population_size(&self) -> u64 {
        self.population.iter().map(|(_, c)| c).sum()
    }

    /// The default horizon `200·n²·ln n` (the historical CLI default).
    pub fn default_horizon(n: u64) -> u64 {
        let ln = (n.max(2) as f64).ln();
        (200.0 * (n * n) as f64 * ln) as u64
    }

    /// The horizon this spec runs with.
    pub fn effective_horizon(&self) -> u64 {
        self.horizon.unwrap_or_else(|| Self::default_horizon(self.population_size()))
    }

    /// The ensemble seed mode.
    pub fn ensemble_seed_mode(&self) -> SeedMode {
        match self.seed_mode {
            SeedModeSpec::Split => SeedMode::Split,
            SeedModeSpec::Offset => SeedMode::Offset,
        }
    }

    /// Parses a spec from a JSON request body. Unknown fields are
    /// rejected (typo guard), missing optional fields take defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Self::from_value(&parse_json(text)?)
    }

    /// Parses a spec from an already-parsed [`JsonValue`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field.
    pub fn from_value(v: &JsonValue) -> Result<Self, SpecError> {
        let fields = match v {
            JsonValue::Obj(fields) => fields,
            _ => {
                return Err(SpecError::BadField {
                    field: "<root>".to_string(),
                    detail: "spec must be a JSON object".to_string(),
                })
            }
        };
        const KNOWN: &[&str] = &[
            "protocol", "population", "seed", "seed_mode", "engine", "topology",
            "trials", "threads", "horizon", "stop", "faults", "probe", "mean_field",
        ];
        for (k, _) in fields {
            if !KNOWN.contains(&k.as_str()) {
                return Err(SpecError::UnknownField(k.clone()));
            }
        }

        let protocol = parse_protocol_ref(
            v.get("protocol").ok_or(SpecError::MissingField("protocol"))?,
        )?;
        let population = parse_population(
            v.get("population").ok_or(SpecError::MissingField("population"))?,
        )?;
        let seed = opt_u64(v, "seed")?.unwrap_or(0);
        let seed_mode = match v.get("seed_mode").and_then(JsonValue::as_str) {
            None => SeedModeSpec::Split,
            Some("split") => SeedModeSpec::Split,
            Some("offset") => SeedModeSpec::Offset,
            Some(other) => {
                return Err(bad("seed_mode", &format!("unknown mode {other:?}")))
            }
        };
        let engine = match v.get("engine").and_then(JsonValue::as_str) {
            None | Some("sequential") => EngineSel::Sequential,
            Some("batched") => EngineSel::Batched,
            Some("agents") => EngineSel::Agents,
            Some("mean-field") => EngineSel::MeanField,
            Some(other) => return Err(bad("engine", &format!("unknown engine {other:?}"))),
        };
        let topology = match v.get("topology") {
            None | Some(JsonValue::Null) => None,
            Some(t) => Some(parse_topology(t)?),
        };
        let trials = opt_u64(v, "trials")?.unwrap_or(1).max(1);
        let threads = opt_u64(v, "threads")?.unwrap_or(0) as usize;
        let horizon = opt_u64(v, "horizon")?;
        let stop = match v.get("stop").and_then(JsonValue::as_str) {
            None | Some("stabilization") => StopCondition::Stabilization,
            Some("consensus") => StopCondition::Consensus,
            Some("fixed") => StopCondition::FixedSteps,
            Some(other) => return Err(bad("stop", &format!("unknown stop {other:?}"))),
        };
        let faults = match v.get("faults") {
            None | Some(JsonValue::Null) => None,
            Some(fv) => {
                let f = parse_faults(fv)?;
                if f.is_empty() {
                    None
                } else {
                    Some(f)
                }
            }
        };
        let probe = match v.get("probe") {
            None | Some(JsonValue::Null) => ProbeSpec::default(),
            Some(pv) => parse_probe(pv)?,
        };
        let mean_field = match v.get("mean_field") {
            None | Some(JsonValue::Null) => None,
            Some(mv) => Some(parse_mean_field(mv)?),
        };
        Ok(Self {
            protocol,
            population,
            seed,
            seed_mode,
            engine,
            topology,
            trials,
            threads,
            horizon,
            stop,
            faults,
            probe,
            mean_field,
        })
    }

    /// Canonical JSON: fixed field order, defaults omitted. Two specs are
    /// the same request iff their canonical renderings are byte-equal, so
    /// this string is the cache key for response caching.
    pub fn canonical_json(&self) -> String {
        self.to_value().render()
    }

    /// The spec as a [`JsonValue`] (the `spec` echo inside reports).
    pub fn to_value(&self) -> JsonValue {
        let mut obj: Vec<(String, JsonValue)> = Vec::new();
        let proto = match &self.protocol {
            ProtocolRef::Name { name, params } => {
                let mut p = vec![("name".to_string(), JsonValue::Str(name.clone()))];
                for (k, v) in params {
                    p.push((k.clone(), JsonValue::Num(*v as f64)));
                }
                JsonValue::Obj(p)
            }
            ProtocolRef::Formula(src) => JsonValue::Obj(vec![(
                "formula".to_string(),
                JsonValue::Str(src.clone()),
            )]),
        };
        obj.push(("protocol".to_string(), proto));
        obj.push((
            "population".to_string(),
            JsonValue::Obj(
                self.population
                    .iter()
                    .map(|(s, c)| (s.clone(), JsonValue::Num(*c as f64)))
                    .collect(),
            ),
        ));
        obj.push(("seed".to_string(), JsonValue::Num(self.seed as f64)));
        if self.seed_mode == SeedModeSpec::Offset {
            obj.push(("seed_mode".to_string(), JsonValue::Str("offset".to_string())));
        }
        obj.push(("engine".to_string(), JsonValue::Str(self.engine.name().to_string())));
        if let Some(t) = &self.topology {
            let mut tf = vec![("kind".to_string(), JsonValue::Str(t.kind().to_string()))];
            match t {
                TopologySpec::Random { p, graph_seed } => {
                    tf.push(("p".to_string(), JsonValue::Num(*p)));
                    tf.push(("graph_seed".to_string(), JsonValue::Num(*graph_seed as f64)));
                }
                TopologySpec::Torus2d { w, h } => {
                    tf.push(("w".to_string(), JsonValue::Num(*w as f64)));
                    tf.push(("h".to_string(), JsonValue::Num(*h as f64)));
                }
                TopologySpec::Torus3d { w, h, d } => {
                    tf.push(("w".to_string(), JsonValue::Num(*w as f64)));
                    tf.push(("h".to_string(), JsonValue::Num(*h as f64)));
                    tf.push(("d".to_string(), JsonValue::Num(*d as f64)));
                }
                _ => {}
            }
            obj.push(("topology".to_string(), JsonValue::Obj(tf)));
        }
        if self.trials != 1 {
            obj.push(("trials".to_string(), JsonValue::Num(self.trials as f64)));
        }
        // `threads` is deliberately NOT echoed: it is execution policy, not
        // request semantics. Ensembles are thread-count-invariant, so specs
        // differing only in `threads` are the same request — same canonical
        // key, byte-identical reports.
        if let Some(h) = self.horizon {
            obj.push(("horizon".to_string(), JsonValue::Num(h as f64)));
        }
        if self.stop != StopCondition::Stabilization {
            obj.push(("stop".to_string(), JsonValue::Str(self.stop.name().to_string())));
        }
        if let Some(f) = &self.faults {
            let pair = |xs: &[(u64, u64)]| {
                JsonValue::Arr(
                    xs.iter()
                        .map(|&(t, k)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(t as f64),
                                JsonValue::Num(k as f64),
                            ])
                        })
                        .collect(),
                )
            };
            let mut ff = Vec::new();
            if !f.crash.is_empty() {
                ff.push(("crash".to_string(), pair(&f.crash)));
            }
            if !f.corrupt.is_empty() {
                ff.push(("corrupt".to_string(), pair(&f.corrupt)));
            }
            if f.drop != 0.0 {
                ff.push(("drop".to_string(), JsonValue::Num(f.drop)));
            }
            obj.push(("faults".to_string(), JsonValue::Obj(ff)));
        }
        if self.probe.jsonl {
            obj.push((
                "probe".to_string(),
                JsonValue::Obj(vec![
                    ("kind".to_string(), JsonValue::Str("jsonl".to_string())),
                    ("stride".to_string(), JsonValue::Num(self.probe.stride.max(1) as f64)),
                ]),
            ));
        }
        if let Some(m) = &self.mean_field {
            let mut mf = vec![("horizon".to_string(), JsonValue::Num(m.horizon))];
            if m.diffusion {
                mf.push(("diffusion".to_string(), JsonValue::Bool(true)));
            }
            if let Some(p) = m.population {
                mf.push(("population".to_string(), JsonValue::Num(p as f64)));
            }
            mf.push(("eps".to_string(), JsonValue::Num(m.eps)));
            obj.push(("mean_field".to_string(), JsonValue::Obj(mf)));
        }
        JsonValue::Obj(obj)
    }
}

fn bad(field: &str, detail: &str) -> SpecError {
    SpecError::BadField { field: field.to_string(), detail: detail.to_string() }
}

fn opt_u64(v: &JsonValue, field: &'static str) -> Result<Option<u64>, SpecError> {
    match v.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(field, "must be a non-negative integer")),
    }
}

fn parse_protocol_ref(v: &JsonValue) -> Result<ProtocolRef, SpecError> {
    if let Some(src) = v.get("formula").and_then(JsonValue::as_str) {
        return Ok(ProtocolRef::Formula(src.to_string()));
    }
    if let Some(name) = v.get("name").and_then(JsonValue::as_str) {
        let mut params = Vec::new();
        if let JsonValue::Obj(fields) = v {
            for (k, pv) in fields {
                if k == "name" {
                    continue;
                }
                let x = pv
                    .as_u64()
                    .ok_or_else(|| bad(k, "protocol parameters must be integers"))?;
                params.push((k.clone(), x));
            }
        }
        return Ok(ProtocolRef::Name { name: name.to_string(), params });
    }
    Err(bad("protocol", "must carry either \"name\" or \"formula\""))
}

fn parse_population(v: &JsonValue) -> Result<Vec<(String, u64)>, SpecError> {
    let fields = match v {
        JsonValue::Obj(fields) => fields,
        _ => return Err(bad("population", "must be an object of symbol -> count")),
    };
    let mut out = Vec::with_capacity(fields.len());
    for (k, cv) in fields {
        let c = cv
            .as_u64()
            .ok_or_else(|| bad(k, "counts must be non-negative integers"))?;
        if out.iter().any(|(s, _)| s == k) {
            return Err(bad(k, "duplicate population symbol"));
        }
        out.push((k.clone(), c));
    }
    if out.is_empty() {
        return Err(bad("population", "must name at least one symbol"));
    }
    Ok(out)
}

fn parse_topology(v: &JsonValue) -> Result<TopologySpec, SpecError> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("topology", "must carry a \"kind\""))?;
    let u32_field = |name: &str| -> Result<u32, SpecError> {
        v.get(name)
            .and_then(JsonValue::as_u64)
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| bad(name, "must be a u32"))
    };
    match kind {
        "complete" => Ok(TopologySpec::Complete),
        "line" => Ok(TopologySpec::Line),
        "cycle" => Ok(TopologySpec::Cycle),
        "star" => Ok(TopologySpec::Star),
        "random" => {
            let p = v
                .get("p")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad("p", "must be a probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(bad("p", "must be in [0, 1]"));
            }
            let graph_seed = v.get("graph_seed").and_then(JsonValue::as_u64).unwrap_or(0);
            Ok(TopologySpec::Random { p, graph_seed })
        }
        "torus2d" => Ok(TopologySpec::Torus2d { w: u32_field("w")?, h: u32_field("h")? }),
        "torus3d" => Ok(TopologySpec::Torus3d {
            w: u32_field("w")?,
            h: u32_field("h")?,
            d: u32_field("d")?,
        }),
        other => Err(bad("topology", &format!("unknown kind {other:?}"))),
    }
}

fn parse_burst_list(v: &JsonValue, field: &str) -> Result<Vec<(u64, u64)>, SpecError> {
    let xs = match v {
        JsonValue::Arr(xs) => xs,
        _ => return Err(bad(field, "must be an array of [slot, count] pairs")),
    };
    let mut out = Vec::with_capacity(xs.len());
    for x in xs {
        match x {
            JsonValue::Arr(pair) if pair.len() == 2 => {
                let t = pair[0]
                    .as_u64()
                    .ok_or_else(|| bad(field, "slots must be integers"))?;
                let k = pair[1]
                    .as_u64()
                    .ok_or_else(|| bad(field, "counts must be integers"))?;
                out.push((t, k));
            }
            _ => return Err(bad(field, "must be an array of [slot, count] pairs")),
        }
    }
    Ok(out)
}

fn parse_faults(v: &JsonValue) -> Result<FaultSpec, SpecError> {
    let fields = match v {
        JsonValue::Obj(fields) => fields,
        _ => return Err(bad("faults", "must be an object")),
    };
    let mut out = FaultSpec::default();
    for (k, fv) in fields {
        match k.as_str() {
            "crash" => out.crash = parse_burst_list(fv, "faults.crash")?,
            "corrupt" => out.corrupt = parse_burst_list(fv, "faults.corrupt")?,
            "drop" => {
                let p = fv
                    .as_f64()
                    .ok_or_else(|| bad("faults.drop", "must be a probability"))?;
                // p = 1 would freeze the schedule forever (InteractionDrop
                // rejects it with a panic; we refuse it with an error).
                if !(0.0..1.0).contains(&p) {
                    return Err(bad("faults.drop", "must be in [0, 1)"));
                }
                out.drop = p;
            }
            other => return Err(SpecError::UnknownField(format!("faults.{other}"))),
        }
    }
    Ok(out)
}

fn parse_probe(v: &JsonValue) -> Result<ProbeSpec, SpecError> {
    match v {
        JsonValue::Str(s) if s == "none" => Ok(ProbeSpec::default()),
        JsonValue::Str(s) if s == "jsonl" => Ok(ProbeSpec { jsonl: true, stride: 1 }),
        JsonValue::Obj(_) => {
            let kind = v
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("probe", "must carry a \"kind\""))?;
            match kind {
                "none" => Ok(ProbeSpec::default()),
                "jsonl" => {
                    let stride = v.get("stride").and_then(JsonValue::as_u64).unwrap_or(1);
                    if stride == 0 {
                        return Err(bad("probe.stride", "must be >= 1"));
                    }
                    Ok(ProbeSpec { jsonl: true, stride })
                }
                other => Err(bad("probe", &format!("unknown kind {other:?}"))),
            }
        }
        _ => Err(bad("probe", "must be \"none\", \"jsonl\", or an object")),
    }
}

fn parse_mean_field(v: &JsonValue) -> Result<MeanFieldSpec, SpecError> {
    let fields = match v {
        JsonValue::Obj(fields) => fields,
        _ => return Err(bad("mean_field", "must be an object")),
    };
    let mut out = MeanFieldSpec::default();
    for (k, fv) in fields {
        match k.as_str() {
            "horizon" => {
                out.horizon = fv
                    .as_f64()
                    .filter(|x| *x > 0.0)
                    .ok_or_else(|| bad("mean_field.horizon", "must be a positive time"))?;
            }
            "diffusion" => {
                out.diffusion = matches!(fv, JsonValue::Bool(true));
            }
            "population" => {
                out.population = Some(
                    fv.as_u64()
                        .filter(|&n| n >= 2)
                        .ok_or_else(|| bad("mean_field.population", "must be >= 2"))?,
                );
            }
            "eps" => {
                out.eps = fv
                    .as_f64()
                    .filter(|x| *x > 0.0 && *x < 1.0)
                    .ok_or_else(|| bad("mean_field.eps", "must be in (0, 1)"))?;
            }
            other => return Err(SpecError::UnknownField(format!("mean_field.{other}"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Outcomes and reports
// ---------------------------------------------------------------------------

/// A single deterministic run's result.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleRun {
    /// First interaction index after which the output held to the end
    /// (consensus step under [`StopCondition::Consensus`]).
    pub stabilized_at: Option<u64>,
    /// Interactions after stabilization.
    pub silent_tail: u64,
    /// The horizon the run was given.
    pub horizon: u64,
    /// Total interactions executed.
    pub steps: u64,
    /// State-changing interactions (`None` where the engine doesn't
    /// track them).
    pub effective_steps: Option<u64>,
    /// Final output multiset (`Debug`-rendered outputs, interning order).
    pub outputs: Vec<(String, u64)>,
}

/// Aggregate of a faulted run (or a fault ensemble).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// Trials executed.
    pub trials: u64,
    /// Trials whose final segment recovered the expected output.
    pub recovered: u64,
    /// Faults injected, summed over trials.
    pub faults_injected: u64,
    /// Slots dropped, summed over trials.
    pub dropped: u64,
    /// The mergeable MTTR summary over every trial's final segment
    /// (`pp-mttr/v1` JSON).
    pub mttr_json: String,
}

/// What a dispatched run produced (typed, so callers like benches can
/// reach the underlying statistics without re-parsing JSON).
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// One deterministic trial.
    Single(SingleRun),
    /// A deterministic multi-trial ensemble.
    Ensemble(EnsembleReport),
    /// A faulted run or fault ensemble.
    Faults(FaultSummary),
    /// An engine realized outside `pp-core` (mean-field): a tag plus a
    /// ready-made JSON body.
    External {
        /// Result-kind tag (e.g. `"mean-field"`).
        kind: String,
        /// The `result` object body.
        body: JsonValue,
    },
}

/// The response of [`run_counts`]/[`run_agents`] after the resolver wraps
/// it with protocol metadata: everything a client needs, rendered as one
/// deterministic `pp-run/v1` JSON object by [`to_json`](Self::to_json).
///
/// Reports deliberately contain **no wall-clock fields** — byte equality
/// across server restarts and thread counts is a hard guarantee (timing
/// travels in HTTP headers instead).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Cache/identity key of the protocol that ran (registry name or
    /// compile key).
    pub protocol_key: String,
    /// The engine that ran.
    pub engine: EngineSel,
    /// The protocol's input symbols, in symbol-index order.
    pub symbols: Vec<String>,
    /// Counts by symbol index (aligned with `symbols`).
    pub counts: Vec<u64>,
    /// Total population.
    pub population: u64,
    /// Ground truth of the predicate on this input, when defined.
    pub ground_truth: Option<bool>,
    /// Edge count of the materialized topology (agents engine).
    pub edges: Option<u64>,
    /// The run's outcome.
    pub outcome: RunOutcome,
    /// Canonical spec echo.
    pub spec: JsonValue,
}

impl RunReport {
    /// The single-run outcome, if that is what ran.
    pub fn single(&self) -> Option<&SingleRun> {
        match &self.outcome {
            RunOutcome::Single(s) => Some(s),
            _ => None,
        }
    }

    /// The ensemble report, if an ensemble ran.
    pub fn ensemble(&self) -> Option<&EnsembleReport> {
        match &self.outcome {
            RunOutcome::Ensemble(e) => Some(e),
            _ => None,
        }
    }

    /// Deterministic `pp-run/v1` JSON. Byte-identical for byte-identical
    /// canonical specs, on any fresh process, at any thread count.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":\"pp-run/v1\"");
        s.push_str(",\"protocol\":");
        let mut key = String::new();
        write_json_string(&self.protocol_key, &mut key);
        s.push_str(&key);
        s.push_str(&format!(",\"engine\":\"{}\"", self.engine.name()));
        s.push_str(",\"symbols\":");
        s.push_str(
            &JsonValue::Arr(
                self.symbols.iter().map(|x| JsonValue::Str(x.clone())).collect(),
            )
            .render(),
        );
        s.push_str(",\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{c}"));
        }
        s.push(']');
        s.push_str(&format!(",\"population\":{}", self.population));
        match self.ground_truth {
            Some(b) => s.push_str(&format!(",\"ground_truth\":{b}")),
            None => s.push_str(",\"ground_truth\":null"),
        }
        if let Some(e) = self.edges {
            s.push_str(&format!(",\"edges\":{e}"));
        }
        s.push_str(",\"result\":");
        match &self.outcome {
            RunOutcome::Single(r) => {
                s.push_str("{\"kind\":\"single\"");
                match r.stabilized_at {
                    Some(t) => s.push_str(&format!(",\"stabilized_at\":{t}")),
                    None => s.push_str(",\"stabilized_at\":null"),
                }
                s.push_str(&format!(",\"silent_tail\":{}", r.silent_tail));
                s.push_str(&format!(",\"horizon\":{}", r.horizon));
                s.push_str(&format!(",\"steps\":{}", r.steps));
                match r.effective_steps {
                    Some(t) => s.push_str(&format!(",\"effective_steps\":{t}")),
                    None => s.push_str(",\"effective_steps\":null"),
                }
                s.push_str(",\"outputs\":{");
                for (i, (o, c)) in r.outputs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write_json_string(o, &mut s);
                    s.push_str(&format!(":{c}"));
                }
                s.push_str("}}");
            }
            RunOutcome::Ensemble(e) => {
                s.push_str("{\"kind\":\"ensemble\",\"report\":");
                s.push_str(&e.to_json());
                s.push('}');
            }
            RunOutcome::Faults(f) => {
                s.push_str("{\"kind\":\"faults\"");
                s.push_str(&format!(",\"trials\":{}", f.trials));
                s.push_str(&format!(",\"recovered\":{}", f.recovered));
                s.push_str(&format!(",\"faults_injected\":{}", f.faults_injected));
                s.push_str(&format!(",\"dropped\":{}", f.dropped));
                s.push_str(",\"mttr\":");
                s.push_str(&f.mttr_json);
                s.push('}');
            }
            RunOutcome::External { kind, body } => {
                s.push_str("{\"kind\":");
                let mut k = String::new();
                write_json_string(kind, &mut k);
                s.push_str(&k);
                if let JsonValue::Obj(fields) = body {
                    for (name, v) in fields {
                        s.push(',');
                        write_json_string(name, &mut s);
                        s.push(':');
                        s.push_str(&v.render());
                    }
                }
                s.push('}');
            }
        }
        s.push_str(",\"spec\":");
        s.push_str(&self.spec.render());
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// The core dispatchers
// ---------------------------------------------------------------------------

fn outputs_of<P, Pr, Tr>(sim: &Simulation<P, Pr, Tr>) -> Vec<(String, u64)>
where
    P: Protocol,
    Pr: crate::observe::Probe,
    Tr: crate::trace::Tracer,
{
    sim.output_histogram().iter().map(|(o, c)| (format!("{o:?}"), *c)).collect()
}

/// Runs `spec` on the **count engine** (complete interaction graph):
/// sequential or batched, one trial or a deterministic ensemble, faulted
/// or clean. This is the single seam every count-based front end routes
/// through; it reproduces, stream-for-stream, what the historical direct
/// calls produced.
///
/// `pairs` are `(input, count)` in spec order (order fixes interning and
/// the RNG stream), `expected` is the ground-truth output measured
/// against.
///
/// # Errors
///
/// [`SpecError::Unsupported`] for combinations outside the matrix
/// (consensus × batched, fixed × ensemble, faults × consensus/fixed).
pub fn run_counts<P>(
    spec: &RunSpec,
    protocol: &P,
    pairs: &[(P::Input, u64)],
    expected: &P::Output,
) -> Result<RunOutcome, SpecError>
where
    P: Protocol + Clone + Send + Sync,
    P::Input: Sync,
    P::Output: Sync,
{
    let horizon = spec.effective_horizon();
    let batched = match spec.engine {
        EngineSel::Sequential => false,
        EngineSel::Batched => true,
        other => {
            return Err(SpecError::Internal(format!(
                "run_counts dispatched with engine {:?}",
                other.name()
            )))
        }
    };
    let make = |_trial: u64| {
        Simulation::from_counts(protocol.clone(), pairs.iter().cloned())
    };

    if let Some(faults) = &spec.faults {
        if spec.stop != StopCondition::Stabilization {
            return Err(SpecError::Unsupported(
                "faulted runs measure recovery; use stop=\"stabilization\"".to_string(),
            ));
        }
        if batched {
            return Err(SpecError::Unsupported(
                "fault injection runs on the sequential engine".to_string(),
            ));
        }
        let run_one = |rng: &mut StdRng| {
            let mut sim = make(0);
            let mut plan = faults.build_plan::<P::State>();
            sim.run_with_faults(&mut plan, expected, horizon, rng)
        };
        let runs = if spec.trials == 1 {
            vec![run_one(&mut seeded_rng(spec.seed))]
        } else {
            ensemble_of(spec).map(|_trial, rng| run_one(rng))
        };
        let mut mttr = Mttr::new();
        let mut injected = 0u64;
        let mut dropped = 0u64;
        let mut recovered = 0u64;
        for r in &runs {
            mttr.absorb(r.final_segment());
            injected += r.faults_injected;
            dropped += r.dropped;
            recovered += u64::from(r.recovered());
        }
        return Ok(RunOutcome::Faults(FaultSummary {
            trials: runs.len() as u64,
            recovered,
            faults_injected: injected,
            dropped,
            mttr_json: mttr.to_json(),
        }));
    }

    if spec.trials == 1 {
        let mut rng = seeded_rng(spec.seed);
        let mut sim = make(0);
        let outcome = match spec.stop {
            StopCondition::Stabilization => {
                let rep = if batched {
                    sim.measure_stabilization_batched(expected, horizon, &mut rng)
                } else {
                    sim.measure_stabilization(expected, horizon, &mut rng)
                };
                SingleRun {
                    stabilized_at: rep.stabilized_at,
                    silent_tail: rep.silent_tail(),
                    horizon: rep.horizon,
                    steps: sim.steps(),
                    effective_steps: Some(sim.effective_steps()),
                    outputs: outputs_of(&sim),
                }
            }
            StopCondition::Consensus => {
                if batched {
                    return Err(SpecError::Unsupported(
                        "stop=\"consensus\" runs on the sequential engine".to_string(),
                    ));
                }
                let at = sim.run_until_consensus(expected, horizon, &mut rng);
                SingleRun {
                    stabilized_at: at,
                    silent_tail: 0,
                    horizon,
                    steps: sim.steps(),
                    effective_steps: Some(sim.effective_steps()),
                    outputs: outputs_of(&sim),
                }
            }
            StopCondition::FixedSteps => {
                if batched {
                    sim.run_batched(horizon, &mut rng);
                } else {
                    sim.run(horizon, &mut rng);
                }
                SingleRun {
                    stabilized_at: None,
                    silent_tail: 0,
                    horizon,
                    steps: sim.steps(),
                    effective_steps: Some(sim.effective_steps()),
                    outputs: outputs_of(&sim),
                }
            }
        };
        return Ok(RunOutcome::Single(outcome));
    }

    // Ensemble path: byte-identical statistics at any thread count.
    let ens = ensemble_of(spec);
    let report = match spec.stop {
        StopCondition::Stabilization => {
            if batched {
                ens.measure_stabilization_batched(make, expected, horizon)
            } else {
                ens.measure_stabilization(make, expected, horizon)
            }
        }
        StopCondition::Consensus => {
            if batched {
                return Err(SpecError::Unsupported(
                    "stop=\"consensus\" runs on the sequential engine".to_string(),
                ));
            }
            ens.run_until_consensus(make, expected, horizon)
        }
        StopCondition::FixedSteps => {
            return Err(SpecError::Unsupported(
                "stop=\"fixed\" reports one histogram; run it with trials=1".to_string(),
            ))
        }
    };
    Ok(RunOutcome::Ensemble(report))
}

/// Runs `spec` on the **agent engine** over an arbitrary scheduler:
/// one trial or a deterministic ensemble. The caller (the resolver layer)
/// materializes the topology and builds `mk_sampler`, one sampler per
/// trial; `inputs` are per-agent inputs in spec order.
///
/// # Errors
///
/// [`SpecError::Unsupported`] for stop conditions other than
/// stabilization, and for fault plans (count engine only in v1).
pub fn run_agents<P, S, F>(
    spec: &RunSpec,
    protocol: &P,
    inputs: &[P::Input],
    expected: &P::Output,
    mk_sampler: F,
) -> Result<RunOutcome, SpecError>
where
    P: Protocol + Clone + Send + Sync,
    P::Input: Sync,
    P::Output: Sync,
    S: PairSampler,
    F: Fn() -> S + Sync,
{
    if spec.faults.is_some() {
        return Err(SpecError::Unsupported(
            "fault plans run on the count engines in this version".to_string(),
        ));
    }
    if spec.stop != StopCondition::Stabilization {
        return Err(SpecError::Unsupported(
            "the agents engine measures stabilization".to_string(),
        ));
    }
    let horizon = spec.effective_horizon();
    let make = |_trial: u64| {
        AgentSimulation::from_inputs(protocol.clone(), inputs, mk_sampler())
    };
    if spec.trials == 1 {
        let mut rng = seeded_rng(spec.seed);
        let mut sim = make(0);
        let rep = sim.measure_stabilization(expected, horizon, &mut rng);
        return Ok(RunOutcome::Single(SingleRun {
            stabilized_at: rep.stabilized_at,
            silent_tail: rep.silent_tail(),
            horizon: rep.horizon,
            steps: sim.steps(),
            effective_steps: Some(sim.effective_steps()),
            outputs: sim
                .output_histogram()
                .iter()
                .map(|(o, c)| (format!("{o:?}"), *c))
                .collect(),
        }));
    }
    let report = ensemble_of(spec).measure_stabilization_agents(make, expected, horizon);
    Ok(RunOutcome::Ensemble(report))
}

fn ensemble_of(spec: &RunSpec) -> Ensemble {
    let mut ens =
        Ensemble::new(spec.trials, spec.seed).with_seed_mode(spec.ensemble_seed_mode());
    if spec.threads != 0 {
        ens = ens.with_threads(spec.threads);
    }
    ens
}

/// Convenience for resolvers: validates population bounds against a cap
/// and returns the total.
///
/// # Errors
///
/// [`SpecError::PopulationTooSmall`] below 2,
/// [`SpecError::PopulationTooLarge`] above `max`.
pub fn check_population(spec: &RunSpec, max: u64) -> Result<u64, SpecError> {
    let n = spec.population_size();
    if n < 2 {
        return Err(SpecError::PopulationTooSmall(n));
    }
    if n > max {
        return Err(SpecError::PopulationTooLarge { n, max });
    }
    Ok(n)
}

/// Maps spec-order population symbols to `(symbol_index, count)` pairs
/// given the protocol's symbol table, preserving spec order.
///
/// # Errors
///
/// [`SpecError::UnknownSymbol`] when a population symbol is not in the
/// table.
pub fn index_population(
    population: &[(String, u64)],
    symbols: &[String],
) -> Result<Vec<(usize, u64)>, SpecError> {
    let by_name: HashMap<&str, usize> =
        symbols.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();
    population
        .iter()
        .map(|(sym, c)| {
            by_name.get(sym.as_str()).map(|&i| (i, *c)).ok_or_else(|| {
                SpecError::UnknownSymbol { symbol: sym.clone(), known: symbols.to_vec() }
            })
        })
        .collect()
}

/// Counts re-keyed by symbol index (for ground-truth evaluation, which is
/// order-insensitive), zero-filled for absent symbols.
pub fn counts_by_symbol(indexed: &[(usize, u64)], arity: usize) -> Vec<u64> {
    let mut out = vec![0u64; arity.max(1)];
    for &(i, c) in indexed {
        if let Some(slot) = out.get_mut(i) {
            *slot += c;
        }
    }
    out
}

/// One RNG draw helper kept here so dispatchers never import `Rng`
/// elsewhere: the seeded single-run stream is `seeded_rng(seed)`.
pub fn single_run_rng(spec: &RunSpec) -> StdRng {
    seeded_rng(spec.seed)
}

// Silence the unused-import lint when the faults path is compiled out in
// future feature work; `Rng` is used via trait methods on StdRng.
#[allow(unused)]
fn _rng_assert(r: &mut StdRng) {
    let _: bool = r.gen_bool(0.5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FnProtocol;

    fn spec_text() -> &'static str {
        r#"{
            "protocol": {"formula": "a > b"},
            "population": {"a": 6, "b": 4},
            "seed": 7,
            "engine": "batched",
            "trials": 4,
            "threads": 2,
            "horizon": 1000
        }"#
    }

    #[test]
    fn json_round_trip() {
        let v = parse_json(
            r#"{"a":[1,2.5,null,true,"x\n\"y"],"b":{"c":-3e2},"d":{}}"#,
        )
        .unwrap();
        let rendered = v.render();
        let v2 = parse_json(&rendered).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-300.0));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("{'a':1}").is_err());
    }

    #[test]
    fn spec_parses_and_canonicalizes() {
        let spec = RunSpec::from_json(spec_text()).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.trials, 4);
        assert_eq!(spec.engine, EngineSel::Batched);
        assert_eq!(spec.population, vec![("a".to_string(), 6), ("b".to_string(), 4)]);
        // Canonicalization is idempotent. `threads` is execution policy,
        // not semantics, so it drops out of the canonical form.
        let canon = spec.canonical_json();
        let spec2 = RunSpec::from_json(&canon).unwrap();
        assert_eq!(spec2.threads, 0);
        let mut semantic = spec.clone();
        semantic.threads = 0;
        assert_eq!(semantic, spec2);
        assert_eq!(spec2.canonical_json(), canon);
    }

    #[test]
    fn spec_rejects_unknown_fields_and_bad_values() {
        assert!(matches!(
            RunSpec::from_json(r#"{"protocol":{"name":"majority"},"population":{"0":2},"bogus":1}"#),
            Err(SpecError::UnknownField(f)) if f == "bogus"
        ));
        assert!(RunSpec::from_json(r#"{"population":{"a":2}}"#).is_err());
        assert!(RunSpec::from_json(
            r#"{"protocol":{"name":"majority"},"population":{"0":-2}}"#
        )
        .is_err());
        assert!(RunSpec::from_json(
            r#"{"protocol":{"name":"majority"},"population":{"0":2,"0":3}}"#
        )
        .is_err());
        let err = RunSpec::from_json("not json at all").unwrap_err();
        assert_eq!(err.code(), "parse_error");
        assert_eq!(err.http_status(), 400);
        assert!(err.to_json().contains("pp-error/v1"));
    }

    #[test]
    fn population_helpers() {
        let spec = RunSpec::from_json(spec_text()).unwrap();
        assert_eq!(spec.population_size(), 10);
        assert_eq!(check_population(&spec, 100).unwrap(), 10);
        assert!(matches!(
            check_population(&spec, 5),
            Err(SpecError::PopulationTooLarge { n: 10, max: 5 })
        ));
        let symbols = vec!["a".to_string(), "b".to_string()];
        let indexed = index_population(&spec.population, &symbols).unwrap();
        assert_eq!(indexed, vec![(0, 6), (1, 4)]);
        assert_eq!(counts_by_symbol(&indexed, 2), vec![6, 4]);
        assert!(index_population(
            &[("zz".to_string(), 1)],
            &symbols
        )
        .is_err());
    }

    /// Epidemic-style protocol for dispatcher tests: one infected agent
    /// converts everyone.
    type Epidemic = FnProtocol<
        bool,
        bool,
        bool,
        fn(&bool) -> bool,
        fn(&bool) -> bool,
        fn(&bool, &bool) -> (bool, bool),
    >;

    fn epidemic() -> Epidemic {
        FnProtocol::new(|&x| x, |&q| q, |&p, &q| (p || q, p || q))
    }

    #[test]
    fn dispatcher_single_matches_direct_call() {
        let mut spec = RunSpec::new(
            ProtocolRef::Name { name: "epidemic".to_string(), params: vec![] },
            vec![("1".to_string(), 2), ("0".to_string(), 48)],
            3,
        );
        spec.horizon = Some(20_000);
        let pairs = vec![(true, 2u64), (false, 48u64)];
        let out = run_counts(&spec, &epidemic(), &pairs, &true).unwrap();
        let RunOutcome::Single(run) = out else { panic!("expected single") };

        // The exact same stream as the historical direct call.
        let mut sim = Simulation::from_counts(epidemic(), pairs.iter().cloned());
        let mut rng = seeded_rng(3);
        let rep = sim.measure_stabilization(&true, 20_000, &mut rng);
        assert_eq!(run.stabilized_at, rep.stabilized_at);
        assert_eq!(run.silent_tail, rep.silent_tail());
        assert_eq!(run.effective_steps, Some(sim.effective_steps()));
    }

    #[test]
    fn dispatcher_ensemble_byte_identical_across_threads() {
        let mut spec = RunSpec::new(
            ProtocolRef::Name { name: "epidemic".to_string(), params: vec![] },
            vec![("1".to_string(), 1), ("0".to_string(), 29)],
            11,
        );
        spec.engine = EngineSel::Batched;
        spec.trials = 6;
        spec.horizon = Some(30_000);
        let pairs = vec![(true, 1u64), (false, 29u64)];

        spec.threads = 1;
        let a = run_counts(&spec, &epidemic(), &pairs, &true).unwrap();
        spec.threads = 2;
        let b = run_counts(&spec, &epidemic(), &pairs, &true).unwrap();
        let (RunOutcome::Ensemble(ra), RunOutcome::Ensemble(rb)) = (a, b) else {
            panic!("expected ensembles")
        };
        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(ra.converged(), 6);
    }

    #[test]
    fn dispatcher_faults_and_unsupported_combos() {
        let mut spec = RunSpec::new(
            ProtocolRef::Name { name: "epidemic".to_string(), params: vec![] },
            vec![("1".to_string(), 3), ("0".to_string(), 17)],
            5,
        );
        spec.horizon = Some(8_000);
        spec.faults = Some(FaultSpec { crash: vec![(100, 2)], corrupt: vec![], drop: 0.01 });
        let pairs = vec![(true, 3u64), (false, 17u64)];
        let out = run_counts(&spec, &epidemic(), &pairs, &true).unwrap();
        let RunOutcome::Faults(f) = out else { panic!("expected faults") };
        assert_eq!(f.trials, 1);
        assert!(f.mttr_json.contains("trials"));

        spec.engine = EngineSel::Batched;
        assert!(matches!(
            run_counts(&spec, &epidemic(), &pairs, &true),
            Err(SpecError::Unsupported(_))
        ));
        spec.engine = EngineSel::Sequential;
        spec.faults = None;
        spec.stop = StopCondition::Consensus;
        spec.trials = 1;
        assert!(run_counts(&spec, &epidemic(), &pairs, &true).is_ok());
    }

    #[test]
    fn report_json_is_deterministic() {
        let spec = RunSpec::new(
            ProtocolRef::Formula("a > b".to_string()),
            vec![("a".to_string(), 6), ("b".to_string(), 4)],
            7,
        );
        let report = RunReport {
            protocol_key: "formula:a > b".to_string(),
            engine: EngineSel::Sequential,
            symbols: vec!["a".to_string(), "b".to_string()],
            counts: vec![6, 4],
            population: 10,
            ground_truth: Some(true),
            edges: None,
            outcome: RunOutcome::Single(SingleRun {
                stabilized_at: Some(42),
                silent_tail: 58,
                horizon: 100,
                steps: 100,
                effective_steps: Some(17),
                outputs: vec![("true".to_string(), 10)],
            }),
            spec: spec.to_value(),
        };
        let j1 = report.to_json();
        let j2 = report.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"schema\":\"pp-run/v1\""));
        // The rendered report is itself valid JSON.
        parse_json(&j1).unwrap();
    }
}
